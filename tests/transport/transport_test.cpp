// Wire framing + payload codec: the byte layer under the cluster runtime.
#include "transport/wire.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <any>

#include "common/rng.hpp"
#include "core/process_cc.hpp"
#include "dsm/store.hpp"
#include "geometry/intern.hpp"
#include "transport/payload.hpp"

namespace chc::transport {
namespace {

WireFrame data_frame(std::uint64_t instance, codec::Buffer payload) {
  WireFrame f;
  f.kind = FrameKind::kData;
  f.instance = instance;
  f.payload = std::move(payload);
  return f;
}

TEST(Wire, RoundTripWholeBuffer) {
  const WireFrame f = data_frame(42, {1, 2, 3, 4, 5});
  const codec::Buffer bytes = frame_bytes(f);
  FrameReader r;
  r.feed(bytes.data(), bytes.size());
  const auto got = r.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, FrameKind::kData);
  EXPECT_EQ(got->instance, 42u);
  EXPECT_EQ(got->payload, f.payload);
  EXPECT_FALSE(r.next().has_value());
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(Wire, ReassemblesOneByteAtATime) {
  // The harshest read fragmentation: every byte arrives alone, across
  // three back-to-back frames.
  std::vector<WireFrame> frames = {
      data_frame(1, {}),
      data_frame(2, codec::Buffer(300, 0xab)),
      {FrameKind::kAck, 3, {9, 9}},
  };
  codec::Buffer stream;
  for (const auto& f : frames) {
    const codec::Buffer b = frame_bytes(f);
    stream.insert(stream.end(), b.begin(), b.end());
  }
  FrameReader r;
  std::vector<WireFrame> got;
  for (const std::uint8_t byte : stream) {
    r.feed(&byte, 1);
    while (auto f = r.next()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(got[i].kind, frames[i].kind);
    EXPECT_EQ(got[i].instance, frames[i].instance);
    EXPECT_EQ(got[i].payload, frames[i].payload);
  }
  EXPECT_FALSE(r.corrupt());
}

TEST(Wire, AbsurdLengthMarksStreamCorrupt) {
  // Length prefix claiming 2 GiB: must flag corruption, not allocate.
  // (A full [len][crc] prefix is needed before the reader inspects it.)
  const codec::Buffer evil = {0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0};
  FrameReader r;
  r.feed(evil.data(), evil.size());
  EXPECT_FALSE(r.next().has_value());
  EXPECT_TRUE(r.corrupt());
}

TEST(Wire, UnknownKindMarksStreamCorrupt) {
  WireFrame f = data_frame(1, {});
  codec::Buffer bytes = frame_bytes(f);
  bytes[8] = 0x77;  // kind byte (after [u32 len][u32 crc])
  FrameReader r;
  r.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(r.next().has_value());
  EXPECT_TRUE(r.corrupt());
}

TEST(Wire, ChecksumCatchesAnySingleFlippedBit) {
  const WireFrame f = data_frame(77, {10, 20, 30, 40, 50, 60});
  const codec::Buffer clean = frame_bytes(f);
  // Flip every bit position past the length prefix in turn; each must be
  // detected (the length prefix itself is covered by the existing range
  // check plus the checksum over the mis-framed body).
  for (std::size_t byte = 4; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      codec::Buffer bytes = clean;
      bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      FrameReader r;
      r.feed(bytes.data(), bytes.size());
      EXPECT_FALSE(r.next().has_value())
          << "byte " << byte << " bit " << bit;
      EXPECT_TRUE(r.corrupt()) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Wire, SocketpairCarriesFramesAcrossPartialReads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<WireFrame> frames;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    codec::Buffer payload(static_cast<std::size_t>(rng.uniform(0, 2000)));
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.uniform(0, 256));
    }
    frames.push_back(data_frame(static_cast<std::uint64_t>(i), payload));
  }
  codec::Buffer stream;
  for (const auto& f : frames) {
    const codec::Buffer b = frame_bytes(f);
    stream.insert(stream.end(), b.begin(), b.end());
  }
  // Writer side dribbles random-sized chunks; reader drains after each.
  FrameReader r;
  std::vector<WireFrame> got;
  std::size_t at = 0;
  std::uint8_t buf[4096];
  while (at < stream.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        1 + static_cast<std::size_t>(rng.uniform(0, 700)),
        stream.size() - at);
    ASSERT_EQ(::send(fds[0], stream.data() + at, chunk, 0),
              static_cast<ssize_t>(chunk));
    at += chunk;
    for (;;) {
      const ssize_t n = ::recv(fds[1], buf, sizeof(buf), MSG_DONTWAIT);
      if (n <= 0) break;
      r.feed(buf, static_cast<std::size_t>(n));
    }
    while (auto f = r.next()) got.push_back(std::move(*f));
  }
  // Drain the tail.
  for (;;) {
    const ssize_t n = ::recv(fds[1], buf, sizeof(buf), MSG_DONTWAIT);
    if (n <= 0) break;
    r.feed(buf, static_cast<std::size_t>(n));
  }
  while (auto f = r.next()) got.push_back(std::move(*f));
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(got[i].instance, frames[i].instance);
    EXPECT_EQ(got[i].payload, frames[i].payload) << "frame " << i;
  }
  EXPECT_FALSE(r.corrupt());
}

TEST(Payload, DsmTagsRoundTrip) {
  const dsm::WriteMsg w{3, geo::Vec{0.25, -1.5}};
  auto bytes = encode_payload(dsm::kTagWrite, std::any(w));
  ASSERT_TRUE(bytes.has_value());
  auto back = decode_payload(dsm::kTagWrite, *bytes);
  ASSERT_TRUE(back.has_value());
  const auto& wb = std::any_cast<const dsm::WriteMsg&>(*back);
  EXPECT_EQ(wb.origin, 3u);
  EXPECT_EQ(wb.value, w.value);

  for (const int tag : {dsm::kTagWriteAck, dsm::kTagStoreAck}) {
    auto ab = encode_payload(tag, std::any(dsm::AckMsg{77}));
    ASSERT_TRUE(ab.has_value());
    auto aback = decode_payload(tag, *ab);
    ASSERT_TRUE(aback.has_value());
    EXPECT_EQ(std::any_cast<const dsm::AckMsg&>(*aback).op, 77u);
  }

  auto gb = encode_payload(dsm::kTagGather, std::any(dsm::GatherMsg{5}));
  ASSERT_TRUE(gb.has_value());
  EXPECT_EQ(std::any_cast<const dsm::GatherMsg&>(
                *decode_payload(dsm::kTagGather, *gb))
                .op,
            5u);

  dsm::View view(4);
  view[1] = geo::Vec{1.0, 2.0};
  view[3] = geo::Vec{-0.5, 0.5};
  for (const int tag : {dsm::kTagGatherReply, dsm::kTagStore}) {
    auto vb = encode_payload(tag, std::any(dsm::ViewMsg{9, view}));
    ASSERT_TRUE(vb.has_value());
    const auto decoded = decode_payload(tag, *vb);
    ASSERT_TRUE(decoded.has_value());
    const auto& vm = std::any_cast<const dsm::ViewMsg&>(*decoded);
    EXPECT_EQ(vm.op, 9u);
    ASSERT_EQ(vm.view.size(), view.size());
    EXPECT_FALSE(vm.view[0].has_value());
    EXPECT_EQ(*vm.view[1], *view[1]);
    EXPECT_EQ(*vm.view[3], *view[3]);
  }
}

TEST(Payload, RoundMsgRoundTripsThroughIntern) {
  const auto h = geo::intern(geo::Polytope::from_points(
      {geo::Vec{0.0, 0.0}, geo::Vec{1.0, 0.0}, geo::Vec{0.0, 1.0}}));
  auto bytes = encode_payload(core::kTagRound, std::any(core::RoundMsg{4, h}));
  ASSERT_TRUE(bytes.has_value());
  auto back = decode_payload(core::kTagRound, *bytes);
  ASSERT_TRUE(back.has_value());
  const auto& rm = std::any_cast<const core::RoundMsg&>(*back);
  EXPECT_EQ(rm.round, 4u);
  ASSERT_NE(rm.h, nullptr);
  // Interning makes value equality pointer equality.
  EXPECT_EQ(rm.h.get(), h.get());
}

TEST(Payload, NaiveInputAndUnsupportedTags) {
  auto vb =
      encode_payload(core::kTagNaiveInput, std::any(geo::Vec{3.0, -4.0}));
  ASSERT_TRUE(vb.has_value());
  EXPECT_EQ(std::any_cast<const geo::Vec&>(
                *decode_payload(core::kTagNaiveInput, *vb)),
            (geo::Vec{3.0, -4.0}));

  EXPECT_FALSE(wire_supported(999));
  EXPECT_FALSE(encode_payload(999, std::any(1)).has_value());
  EXPECT_FALSE(decode_payload(999, {}).has_value());
  // Right tag, wrong std::any type.
  EXPECT_FALSE(encode_payload(dsm::kTagWrite, std::any(1)).has_value());
}

TEST(Payload, RelFrameConversionRoundTrips) {
  net::RelData d;
  d.seq = 11;
  d.cum_ack = 7;
  d.tag = core::kTagRound;
  d.payload = core::RoundMsg{
      2, geo::intern(geo::Polytope::from_points(
             {geo::Vec{0.0, 0.0}, geo::Vec{2.0, 0.0}, geo::Vec{0.0, 2.0}}))};
  d.src_epoch = 3;
  d.dst_epoch = 1;
  const auto frame = to_rel_frame(d);
  ASSERT_TRUE(frame.has_value());
  // Through bytes, as the socket path does.
  const codec::Buffer bytes = codec::encode(*frame);
  const auto parsed = codec::decode_rel_frame(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto back = from_rel_frame(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, d.seq);
  EXPECT_EQ(back->cum_ack, d.cum_ack);
  EXPECT_EQ(back->tag, d.tag);
  EXPECT_EQ(back->src_epoch, d.src_epoch);
  EXPECT_EQ(back->dst_epoch, d.dst_epoch);
  const auto& rm = std::any_cast<const core::RoundMsg&>(back->payload);
  EXPECT_EQ(rm.round, 2u);

  const net::RelAck a{19, 4, 2};
  const auto ack_back =
      from_rel_ack(*codec::decode_rel_ack(codec::encode_rel_ack(to_rel_ack(a))));
  EXPECT_EQ(ack_back.cum_ack, a.cum_ack);
  EXPECT_EQ(ack_back.src_epoch, a.src_epoch);
  EXPECT_EQ(ack_back.dst_epoch, a.dst_epoch);
}

TEST(Payload, HelloFrameRoundTrips) {
  const codec::HelloFrame h{4, 2, 5};
  const auto back = codec::decode_hello(codec::encode_hello(h));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node, 4u);
  EXPECT_EQ(back->epoch, 2u);
  EXPECT_EQ(back->cluster, 5u);
  EXPECT_FALSE(codec::decode_hello({1, 2, 3}).has_value());
}

}  // namespace
}  // namespace chc::transport
