// Cluster runtime tests: NodeRuntime over LoopbackHub (threaded, the TSan
// target), TCP reconnect with epoch bump, and the line RPC.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/workload.hpp"
#include "geometry/polytope.hpp"
#include "obs/checker.hpp"
#include "transport/loopback.hpp"
#include "transport/node.hpp"
#include "transport/rpc.hpp"
#include "transport/tcp.hpp"

namespace chc::transport {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

bool deadline_passed(Clock::time_point dl) { return Clock::now() >= dl; }

TEST(ClusterSpec, ParsesAndRejects) {
  std::string err;
  const auto good = parse_cluster_spec("127.0.0.1:9001,localhost:9002", &err);
  ASSERT_EQ(good.size(), 2u) << err;
  EXPECT_EQ(good[0].host, "127.0.0.1");
  EXPECT_EQ(good[0].port, 9001);
  EXPECT_EQ(good[1].host, "localhost");
  EXPECT_EQ(good[1].port, 9002);

  EXPECT_TRUE(parse_cluster_spec("", &err).empty());
  EXPECT_TRUE(parse_cluster_spec("127.0.0.1", &err).empty());
  EXPECT_TRUE(parse_cluster_spec("127.0.0.1:notaport", &err).empty());
  EXPECT_TRUE(parse_cluster_spec("127.0.0.1:70000", &err).empty());
  EXPECT_TRUE(parse_cluster_spec(":9001", &err).empty());
}

/// Grabs an ephemeral port the OS is unlikely to rebind immediately.
std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

WireFrame tagged(std::uint64_t instance, std::uint8_t byte) {
  WireFrame f;
  f.kind = FrameKind::kData;
  f.instance = instance;
  f.payload = {byte};
  return f;
}

/// Pumps both transports until `want` frames arrived at `sink`, or 5 s.
std::vector<WireFrame> pump_until(TcpTransport& a, TcpTransport& sink,
                                  std::size_t want) {
  std::vector<WireFrame> got;
  const auto dl = Clock::now() + std::chrono::seconds(5);
  while (got.size() < want && !deadline_passed(dl)) {
    a.poll(2, [](NodeId, WireFrame) {});
    sink.poll(2, [&](NodeId, WireFrame f) { got.push_back(std::move(f)); });
  }
  return got;
}

TEST(Tcp, DeliversAndObservesEpochBumpOnReconnect) {
  const std::uint16_t p0 = reserve_port();
  const std::uint16_t p1 = reserve_port();
  const std::vector<PeerAddr> cluster = {{"127.0.0.1", p0},
                                         {"127.0.0.1", p1}};

  auto a = std::make_unique<TcpTransport>(0, cluster, /*epoch=*/0);
  TcpTransport b(1, cluster, /*epoch=*/0);
  EXPECT_EQ(a->listen_port(), p0);
  EXPECT_EQ(b.listen_port(), p1);

  ASSERT_TRUE(a->send(1, tagged(7, 0x11)));
  auto got = pump_until(*a, b, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].instance, 7u);
  EXPECT_EQ(got[0].payload, (codec::Buffer{0x11}));
  ASSERT_TRUE(b.peer_epoch(0).has_value());
  EXPECT_EQ(*b.peer_epoch(0), 0u);

  // Frames flow the other way on b's own outbound connection.
  ASSERT_TRUE(b.send(0, tagged(8, 0x22)));
  got = pump_until(b, *a, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].instance, 8u);
  ASSERT_TRUE(a->peer_epoch(1).has_value());

  // Crash node 0 and restart it as epoch 1: b must see the new HELLO.
  a.reset();
  a = std::make_unique<TcpTransport>(0, cluster, /*epoch=*/1);
  ASSERT_TRUE(a->send(1, tagged(9, 0x33)));
  got = pump_until(*a, b, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].instance, 9u);
  ASSERT_TRUE(b.peer_epoch(0).has_value());
  EXPECT_EQ(*b.peer_epoch(0), 1u);
  EXPECT_GE(b.stats().accepts, 2u);
}

TEST(Rpc, LineServerAnswersConcurrentClients) {
  LineServer server(0);
  ASSERT_GT(server.port(), 0);

  std::atomic<bool> stop{false};
  std::thread pump([&] {
    while (!stop.load()) {
      server.poll(5, [](const std::string& req) { return "echo:" + req; });
    }
  });

  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      LineClient cl;
      if (!cl.connect_to("127.0.0.1", server.port(), 2000)) return;
      for (int i = 0; i < 25; ++i) {
        const std::string msg =
            "c" + std::to_string(c) + "m" + std::to_string(i);
        const auto resp = cl.request(msg, 2000);
        if (resp && *resp == "echo:" + msg) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  pump.join();
  EXPECT_EQ(ok.load(), 100);
}

class LoopbackClusterTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 5;
  static constexpr std::size_t kF = 1;
  static constexpr std::size_t kD = 2;
  static constexpr double kEps = 0.25;

  void SetUp() override {
    trace_dir_ = fs::temp_directory_path() /
                 ("chc_loopback_" +
                  std::to_string(::getpid() ^
                                 static_cast<unsigned>(
                                     reinterpret_cast<std::uintptr_t>(this))));
    fs::create_directories(trace_dir_);
    hub_ = std::make_unique<LoopbackHub>(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      endpoints_.push_back(hub_->endpoint(i));
      runtimes_.push_back(make_runtime(i, /*epoch=*/0));
    }
  }

  void TearDown() override {
    runtimes_.clear();
    endpoints_.clear();
    std::error_code ec;
    fs::remove_all(trace_dir_, ec);
  }

  std::unique_ptr<NodeRuntime> make_runtime(std::size_t id,
                                            std::uint32_t epoch) {
    NodeConfig cfg;
    cfg.id = id;
    cfg.n = kN;
    cfg.epoch = epoch;
    cfg.time_scale = 1e-3;  // fast wall clock for tests
    cfg.trace_dir = trace_dir_.string();
    return std::make_unique<NodeRuntime>(cfg, *endpoints_[id]);
  }

  InstanceSpec make_spec(std::uint64_t iid, std::uint64_t seed) {
    const core::Workload w = core::make_workload(
        kN, kF, kD, core::InputPattern::kUniform, seed);
    InstanceSpec spec;
    spec.id = iid;
    spec.cc.n = kN;
    spec.cc.f = kF;
    spec.cc.d = kD;
    spec.cc.eps = kEps;
    spec.cc.input_magnitude = std::max(1.0, w.correct_magnitude);
    spec.seed = seed;
    spec.inputs = w.inputs;
    spec.faulty = w.faulty;
    return spec;
  }

  /// Starts one stepping thread per runtime; each runs until every live
  /// node has decided `iid` (decided nodes keep stepping — peers still
  /// need their store/ack traffic). Returns false on timeout.
  bool run_until_all_decide(std::uint64_t iid, int timeout_sec) {
    const std::size_t live = runtimes_.size();
    std::atomic<std::size_t> decided{0};
    std::atomic<bool> give_up{false};
    std::vector<std::thread> threads;
    for (auto& rt : runtimes_) {
      NodeRuntime* node = rt.get();
      threads.emplace_back([&, node] {
        bool counted = false;
        while (decided.load() < live && !give_up.load()) {
          node->step(1);
          if (!counted && node->status(iid).decided) {
            counted = true;
            decided.fetch_add(1);
          }
        }
      });
    }
    const auto dl = Clock::now() + std::chrono::seconds(timeout_sec);
    while (decided.load() < live && !deadline_passed(dl)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    give_up.store(true);
    for (auto& t : threads) t.join();
    return decided.load() == live;
  }

  void expect_agreement(std::uint64_t iid) {
    std::vector<geo::Polytope> decisions;
    for (auto& rt : runtimes_) {
      const auto st = rt->status(iid);
      ASSERT_TRUE(st.decided);
      ASSERT_FALSE(st.decision.empty());
      decisions.push_back(geo::Polytope::from_points(st.decision));
    }
    for (std::size_t a = 0; a + 1 < decisions.size(); ++a) {
      for (std::size_t b = a + 1; b < decisions.size(); ++b) {
        EXPECT_LE(geo::hausdorff(decisions[a], decisions[b]), kEps + 1e-9)
            << "nodes " << a << " and " << b << " disagree";
      }
    }
  }

  fs::path trace_dir_;
  std::unique_ptr<LoopbackHub> hub_;
  std::vector<std::unique_ptr<Transport>> endpoints_;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;
};

TEST_F(LoopbackClusterTest, FiveNodesDecideThenSurviveCrashRestart) {
  // Wave 1: plain run to decision on all five nodes.
  const InstanceSpec i1 = make_spec(1, 11);
  for (auto& rt : runtimes_) rt->start_instance(i1);
  ASSERT_TRUE(run_until_all_decide(1, 60)) << "wave 1 stalled";
  expect_agreement(1);

  // Crash node 0: endpoint destruction closes its mailbox, exactly like a
  // dead TCP peer. Restart as epoch 1 with an empty queue.
  runtimes_[0].reset();
  endpoints_[0].reset();
  endpoints_[0] = hub_->endpoint(0);
  runtimes_[0] = make_runtime(0, /*epoch=*/1);

  // Wave 2: a fresh instance submitted to everyone, including the
  // restarted incarnation — full-rejoin proof.
  const InstanceSpec i2 = make_spec(2, 12);
  for (auto& rt : runtimes_) rt->start_instance(i2);
  ASSERT_TRUE(run_until_all_decide(2, 60)) << "wave 2 stalled after restart";
  expect_agreement(2);

  // Clean shutdown, then every per-node trace must pass the checker.
  for (auto& rt : runtimes_) rt->shutdown();
  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(trace_dir_)) {
    if (entry.path().extension() != ".jsonl") continue;
    const obs::CheckReport rep = obs::check_trace_file(entry.path().string());
    EXPECT_TRUE(rep.ok()) << entry.path() << ": "
                          << (rep.parsed && !rep.violations.empty()
                                  ? rep.violations[0].detail
                                  : rep.parse_error);
    EXPECT_EQ(rep.header.env, "live");
    ++checked;
  }
  // 5 nodes x wave 1 + 5 x wave 2 + node 0's epoch-0 trace of instance 2?
  // No: instance 2 started after the restart, so node 0 wrote e1 only.
  // Wave 1 on node 0 is an e0 trace cut off by the crash.
  EXPECT_EQ(checked, 10u);
}

}  // namespace
}  // namespace chc::transport
