// FaultyTransport: the live half of the nemesis, tested over loopback.
//
// Phase timing is wall-clock anchored, so tests pin model time by choosing
// the anchor relative to "now" instead of sleeping: anchor == now puts the
// schedule at model t ~ 0, anchor == now - k * scale puts it at t ~ k.
#include "transport/faulty.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "transport/loopback.hpp"

namespace chc::transport {
namespace {

double realtime_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

WireFrame data_frame(std::uint64_t instance, codec::Buffer payload) {
  WireFrame f;
  f.kind = FrameKind::kData;
  f.instance = instance;
  f.payload = std::move(payload);
  return f;
}

/// Drains node 1's endpoint, returning the instances received in order.
std::vector<std::uint64_t> drain(Transport& t, int timeout_ms = 0) {
  std::vector<std::uint64_t> got;
  t.poll(timeout_ms,
         [&](NodeId, WireFrame f) { got.push_back(f.instance); });
  return got;
}

net::PolicySchedule cut_then_heal(double heal_at) {
  net::NetworkPolicy cut;
  cut.set_channel(0, 1, net::ChannelPolicy(1.0, 0.0, 0.0));
  net::PolicySchedule sched;
  sched.add(0.0, cut);
  sched.add(heal_at, net::NetworkPolicy{});
  return sched;
}

TEST(FaultyTransport, PassthroughWhenUnarmed) {
  LoopbackHub hub(2);
  auto e0 = hub.endpoint(0);
  auto e1 = hub.endpoint(1);
  FaultyTransport ft(*e0);
  EXPECT_FALSE(ft.armed());
  EXPECT_EQ(ft.model_now(), 0.0);
  EXPECT_TRUE(ft.send(1, data_frame(7, {1, 2, 3})));
  EXPECT_EQ(drain(*e1), std::vector<std::uint64_t>{7});
  // Unarmed sends do not touch the stats.
  EXPECT_EQ(ft.stats().passed, 0u);
  EXPECT_EQ(ft.stats().injected_drops, 0u);
}

TEST(FaultyTransport, PartitionPhaseBlocksThenHeals) {
  LoopbackHub hub(2);
  auto e0 = hub.endpoint(0);
  auto e1 = hub.endpoint(1);
  FaultyTransport ft(*e0);

  // Anchor "now": model time sits inside the cut phase [0, 40).
  ft.set_schedule(cut_then_heal(40.0), realtime_now(), /*seed=*/1,
                  /*time_scale=*/1.0);
  ASSERT_TRUE(ft.armed());
  EXPECT_TRUE(ft.send(1, data_frame(1, {})));  // loss is silent
  EXPECT_TRUE(drain(*e1).empty());
  EXPECT_EQ(ft.stats().injected_drops, 1u);

  // Re-anchor 41 model units in the past: the same schedule is now in its
  // healed phase, so the identical send passes.
  ft.set_schedule(cut_then_heal(40.0), realtime_now() - 41.0, /*seed=*/1,
                  /*time_scale=*/1.0);
  EXPECT_GE(ft.model_now(), 40.0);
  EXPECT_TRUE(ft.send(1, data_frame(2, {})));
  EXPECT_EQ(drain(*e1), std::vector<std::uint64_t>{2});
}

TEST(FaultyTransport, CutOnlyAffectsItsDirectedChannel) {
  LoopbackHub hub(3);
  auto e0 = hub.endpoint(0);
  auto e1 = hub.endpoint(1);
  auto e2 = hub.endpoint(2);
  FaultyTransport ft(*e0);
  ft.set_schedule(cut_then_heal(40.0), realtime_now(), 1, 1.0);
  EXPECT_TRUE(ft.send(1, data_frame(1, {})));  // 0 -> 1 is cut
  EXPECT_TRUE(ft.send(2, data_frame(2, {})));  // 0 -> 2 is clean
  EXPECT_TRUE(drain(*e1).empty());
  EXPECT_EQ(drain(*e2), std::vector<std::uint64_t>{2});
}

TEST(FaultyTransport, DuplicatesEveryFrameAtRateOne) {
  LoopbackHub hub(2);
  auto e0 = hub.endpoint(0);
  auto e1 = hub.endpoint(1);
  FaultyTransport ft(*e0);
  net::PolicySchedule sched;
  sched.add(0.0, net::NetworkPolicy::lossy(0.0, /*dup=*/1.0));
  ft.set_schedule(sched, realtime_now(), 1, 1.0);
  EXPECT_TRUE(ft.send(1, data_frame(5, {9})));
  const auto got = drain(*e1);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{5, 5}));
  EXPECT_EQ(ft.stats().injected_dups, 1u);
  EXPECT_EQ(ft.stats().passed, 1u);
}

TEST(FaultyTransport, ReorderParksThenReleasesAfterItsDelay) {
  LoopbackHub hub(2);
  auto e0 = hub.endpoint(0);
  auto e1 = hub.endpoint(1);
  FaultyTransport ft(*e0);
  // reorder_rate 1 with delay in [0.5, 3] model units at scale 0.01 s/unit
  // parks every frame for 5..30 ms of wall time.
  net::PolicySchedule sched;
  sched.add(0.0, net::NetworkPolicy::lossy(0.0, 0.0, /*reorder=*/1.0));
  ft.set_schedule(sched, realtime_now(), 1, /*time_scale=*/0.01);
  EXPECT_TRUE(ft.send(1, data_frame(1, {})));
  EXPECT_EQ(ft.parked(), 1u);
  EXPECT_EQ(ft.stats().injected_delays, 1u);
  EXPECT_TRUE(drain(*e1).empty());

  // Disarm: the parked frame must still drain once its due time passes.
  ft.clear_schedule();
  EXPECT_TRUE(ft.send(1, data_frame(2, {})));  // overtakes the parked frame
  std::vector<std::uint64_t> got = drain(*e1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (got.size() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ft.poll(0, [&](NodeId, WireFrame f) { got.push_back(f.instance); });
    for (const std::uint64_t i : drain(*e1)) got.push_back(i);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{2, 1}));  // later traffic won
  EXPECT_EQ(ft.parked(), 0u);
  EXPECT_EQ(ft.stats().released, 1u);
}

TEST(FaultyTransport, FaultStreamIsSeedDeterministicPerNode) {
  const auto run = [](std::uint64_t seed) {
    LoopbackHub hub(2);
    auto e0 = hub.endpoint(0);
    auto e1 = hub.endpoint(1);
    FaultyTransport ft(*e0);
    net::PolicySchedule sched;
    sched.add(0.0, net::NetworkPolicy::lossy(0.5));
    ft.set_schedule(sched, realtime_now(), seed, 1.0);
    std::vector<std::uint64_t> got;
    for (std::uint64_t i = 0; i < 64; ++i) {
      ft.send(1, data_frame(i, {}));
    }
    e1->poll(0, [&](NodeId, WireFrame f) { got.push_back(f.instance); });
    return got;
  };
  const auto a = run(42);
  EXPECT_EQ(a, run(42));        // same seed, same survivors
  EXPECT_NE(a, run(43));        // different seed, different stream
  EXPECT_GT(a.size(), 8u);      // drop 0.5 leaves a healthy fraction
  EXPECT_LT(a.size(), 56u);     // ... and kills a healthy fraction
}

// --- NemesisSpec wire form ------------------------------------------------

NemesisSpec sample_spec() {
  NemesisSpec spec;
  spec.seed = 0xdeadbeefcafe1234ULL;
  spec.anchor_realtime_sec = 1.7e9 + 0.125;
  spec.time_scale = 0.02;
  net::NetworkPolicy cut = net::NetworkPolicy::lossy(0.1, 0.05, 0.2);
  cut.set_channel(0, 3, net::ChannelPolicy(1.0, 0.0, 0.0));
  cut.set_channel(3, 0, net::ChannelPolicy(1.0, 0.0, 0.0, 0.25, 4.0));
  spec.schedule.add(0.0, cut);
  spec.schedule.add(40.0, net::NetworkPolicy::lossy(0.1, 0.05, 0.2));
  return spec;
}

TEST(NemesisSpec, EncodeParseRoundTrip) {
  const NemesisSpec spec = sample_spec();
  const auto parsed = parse_nemesis_spec(encode_nemesis_spec(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_DOUBLE_EQ(parsed->anchor_realtime_sec, spec.anchor_realtime_sec);
  EXPECT_DOUBLE_EQ(parsed->time_scale, spec.time_scale);
  ASSERT_EQ(parsed->schedule.phases().size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    const auto& want = spec.schedule.phases()[k];
    const auto& got = parsed->schedule.phases()[k];
    EXPECT_DOUBLE_EQ(got.at, want.at);
    EXPECT_DOUBLE_EQ(got.policy.link.drop_rate, want.policy.link.drop_rate);
    EXPECT_DOUBLE_EQ(got.policy.link.dup_rate, want.policy.link.dup_rate);
    EXPECT_DOUBLE_EQ(got.policy.link.reorder_rate,
                     want.policy.link.reorder_rate);
    ASSERT_EQ(got.policy.overrides.size(), want.policy.overrides.size());
  }
  const auto& ovr = parsed->schedule.phases()[0].policy.for_channel(3, 0);
  EXPECT_DOUBLE_EQ(ovr.drop_rate, 1.0);
  EXPECT_DOUBLE_EQ(ovr.reorder_delay_min, 0.25);
  EXPECT_DOUBLE_EQ(ovr.reorder_delay_max, 4.0);
}

TEST(NemesisSpec, ReEncodeIsStable) {
  // parse(encode(x)) re-encodes to the identical string: the controller
  // and the node agree on one canonical wire form.
  const std::string wire = encode_nemesis_spec(sample_spec());
  const auto parsed = parse_nemesis_spec(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(encode_nemesis_spec(*parsed), wire);
}

TEST(NemesisSpec, RejectsMalformedInput) {
  const std::string good = encode_nemesis_spec(sample_spec());
  EXPECT_TRUE(parse_nemesis_spec(good).has_value());
  // Truncations at every token boundary must all fail cleanly.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    if (good[cut] != ' ') continue;
    EXPECT_FALSE(parse_nemesis_spec(good.substr(0, cut)).has_value())
        << "prefix of " << cut << " bytes parsed";
  }
  EXPECT_FALSE(parse_nemesis_spec("").has_value());
  EXPECT_FALSE(parse_nemesis_spec("seed x scale 1 anchor 0 phases 0")
                   .has_value());
  EXPECT_FALSE(parse_nemesis_spec(good + " trailing").has_value());
  // Zero or negative time scale is meaningless.
  EXPECT_FALSE(
      parse_nemesis_spec("seed 1 scale 0 anchor 0 phases 0").has_value());
  EXPECT_FALSE(
      parse_nemesis_spec("seed 1 scale -1 anchor 0 phases 0").has_value());
  // First phase must start at 0; times must ascend.
  EXPECT_FALSE(parse_nemesis_spec("seed 1 scale 1 anchor 0 phases 1 "
                                  "at 5 link 0 0 0 0.5 3 ovr 0")
                   .has_value());
  EXPECT_FALSE(parse_nemesis_spec("seed 1 scale 1 anchor 0 phases 2 "
                                  "at 0 link 0 0 0 0.5 3 ovr 0 "
                                  "at 0 link 0 0 0 0.5 3 ovr 0")
                   .has_value());
  // Bad reorder-delay range inside a channel.
  EXPECT_FALSE(parse_nemesis_spec("seed 1 scale 1 anchor 0 phases 1 "
                                  "at 0 link 0 0 0 3 0.5 ovr 0")
                   .has_value());
}

TEST(NemesisSpec, HeaderPhasesMirrorTheSchedule) {
  const NemesisSpec spec = sample_spec();
  const auto phases = to_header_phases(spec.schedule);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_DOUBLE_EQ(phases[0].at, 0.0);
  EXPECT_DOUBLE_EQ(phases[0].drop, 0.1);
  EXPECT_DOUBLE_EQ(phases[1].at, 40.0);
  ASSERT_EQ(phases[0].overrides.size(), 2u);
  EXPECT_EQ(phases[0].overrides[0].from, 0u);
  EXPECT_EQ(phases[0].overrides[0].to, 3u);
  EXPECT_DOUBLE_EQ(phases[0].overrides[0].drop, 1.0);
  EXPECT_TRUE(phases[1].overrides.empty());
}

}  // namespace
}  // namespace chc::transport
