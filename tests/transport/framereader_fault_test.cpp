// FrameReader under hostile byte streams: dribbled reads, duplicated and
// reordered frames, and corruption.
//
// The reader sits below the reliable channel: it must deliver every
// well-formed frame exactly once per appearance in the stream (the shim
// above dedups protocol-level duplicates) and must NEVER deliver a frame
// that differs from what the sender framed — a flipped bit anywhere is
// either detected (corrupt stream) or leaves the reader waiting for bytes
// that never complete a valid frame.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "transport/wire.hpp"

namespace chc::transport {
namespace {

WireFrame make_frame(FrameKind kind, std::uint64_t instance,
                     codec::Buffer payload) {
  WireFrame f;
  f.kind = kind;
  f.instance = instance;
  f.payload = std::move(payload);
  return f;
}

bool same_frame(const WireFrame& a, const WireFrame& b) {
  return a.kind == b.kind && a.instance == b.instance &&
         a.payload == b.payload;
}

/// A stream mixing kinds, instances and payload sizes, with the hello
/// frames a reconnecting peer would re-send mid-stream (new epoch after a
/// restart shows up here as just another kHello — framing is epoch-blind).
std::vector<WireFrame> mixed_frames(Rng& rng) {
  std::vector<WireFrame> frames;
  frames.push_back(make_frame(FrameKind::kHello, 0, {1, 0}));
  for (int i = 0; i < 12; ++i) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 600));
    codec::Buffer payload(size);
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const FrameKind kind =
        rng.bernoulli(0.2) ? FrameKind::kAck : FrameKind::kData;
    frames.push_back(
        make_frame(kind, static_cast<std::uint64_t>(i % 4), payload));
  }
  frames.push_back(make_frame(FrameKind::kHello, 0, {2, 0}));  // re-handshake
  return frames;
}

codec::Buffer concat(const std::vector<WireFrame>& frames) {
  codec::Buffer stream;
  for (const auto& f : frames) {
    const codec::Buffer b = frame_bytes(f);
    stream.insert(stream.end(), b.begin(), b.end());
  }
  return stream;
}

TEST(FrameReaderFault, DribbledStreamDeliversExactlyOnceInOrder) {
  // Random chunk sizes (1..7 bytes) across many seeds: however the kernel
  // slices reads, each frame comes out exactly once, in order, intact.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const std::vector<WireFrame> frames = mixed_frames(rng);
    const codec::Buffer stream = concat(frames);
    FrameReader r;
    std::vector<WireFrame> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const auto chunk = std::min<std::size_t>(
          static_cast<std::size_t>(rng.uniform_int(1, 7)),
          stream.size() - pos);
      r.feed(stream.data() + pos, chunk);
      pos += chunk;
      while (auto f = r.next()) got.push_back(std::move(*f));
    }
    ASSERT_EQ(got.size(), frames.size()) << "seed " << seed;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_TRUE(same_frame(got[i], frames[i])) << "seed " << seed;
    }
    EXPECT_FALSE(r.corrupt());
    EXPECT_EQ(r.buffered(), 0u);
  }
}

TEST(FrameReaderFault, DuplicatedAndReorderedFramesAllSurfaceIntact) {
  // The network layer may duplicate and reorder whole frames (that is what
  // FaultyTransport injects); the reader is below dedup, so every copy
  // must surface intact in stream order — suppression of duplicates is the
  // reliable channel's job, detection of corruption is the reader's.
  const WireFrame a = make_frame(FrameKind::kData, 1, {10, 11, 12});
  const WireFrame b = make_frame(FrameKind::kData, 2, {20});
  const WireFrame hello = make_frame(FrameKind::kHello, 0, {7});
  const std::vector<WireFrame> stream_order = {a, b, a, hello, b, b, a};
  const codec::Buffer stream = concat(stream_order);
  FrameReader r;
  r.feed(stream.data(), stream.size());
  std::vector<WireFrame> got;
  while (auto f = r.next()) got.push_back(std::move(*f));
  ASSERT_EQ(got.size(), stream_order.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(same_frame(got[i], stream_order[i])) << "frame " << i;
  }
  EXPECT_FALSE(r.corrupt());
}

TEST(FrameReaderFault, EverySingleBitFlipIsDetectedOrStarves) {
  // Exhaustive over one small frame: flipping ANY bit of the serialized
  // bytes must never yield a delivered frame. Every byte is load-bearing
  // (length, crc, kind, instance, payload): a body flip fails the CRC, a
  // crc flip mismatches the intact body, and a length flip either
  // mis-frames (CRC over the wrong slice) or leaves the reader waiting
  // for bytes that never arrive.
  const WireFrame f = make_frame(FrameKind::kData, 3, {0x55, 0xaa, 0x00});
  const codec::Buffer clean = frame_bytes(f);
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      codec::Buffer evil = clean;
      evil[byte] = static_cast<std::uint8_t>(evil[byte] ^ (1u << bit));
      FrameReader r;
      r.feed(evil.data(), evil.size());
      EXPECT_FALSE(r.next().has_value())
          << "bit " << bit << " of byte " << byte << " delivered a frame";
    }
  }
}

TEST(FrameReaderFault, RandomFlipInLongStreamNeverDeliversWrongFrame) {
  // One random bit flip in a multi-frame stream: frames before the damage
  // deliver intact; from the damaged frame on, the reader either flags
  // corruption or starves — it never emits a frame differing from the
  // original at its position.
  for (std::uint64_t seed = 100; seed < 200; ++seed) {
    Rng rng(seed);
    const std::vector<WireFrame> frames = mixed_frames(rng);
    codec::Buffer stream = concat(frames);
    const auto flip_byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(stream.size()) - 1));
    const auto flip_bit = static_cast<int>(rng.uniform_int(0, 7));
    stream[flip_byte] =
        static_cast<std::uint8_t>(stream[flip_byte] ^ (1u << flip_bit));
    FrameReader r;
    r.feed(stream.data(), stream.size());
    std::vector<WireFrame> got;
    while (auto f = r.next()) got.push_back(std::move(*f));
    ASSERT_LT(got.size(), frames.size()) << "seed " << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(same_frame(got[i], frames[i]))
          << "seed " << seed << " frame " << i << " delivered corrupted";
    }
    // The damaged frame itself must not have been consumed silently: the
    // reader is either corrupt or still holding unconsumed bytes.
    EXPECT_TRUE(r.corrupt() || r.buffered() > 0) << "seed " << seed;
  }
}

TEST(FrameReaderFault, CorruptStreamStaysCorruptAcrossFurtherFeeds) {
  // Once corrupt, feeding more (even pristine frames) must not resurrect
  // delivery — the TCP layer is expected to drop the connection.
  // A complete prefix whose length field (0x7fffffff) exceeds
  // kMaxFrameBytes — the reader marks the stream corrupt on first sight.
  const codec::Buffer evil = {0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0};
  FrameReader r;
  r.feed(evil.data(), evil.size());
  EXPECT_FALSE(r.next().has_value());
  ASSERT_TRUE(r.corrupt());
  const codec::Buffer clean =
      frame_bytes(make_frame(FrameKind::kData, 1, {1}));
  r.feed(clean.data(), clean.size());
  EXPECT_FALSE(r.next().has_value());
  EXPECT_TRUE(r.corrupt());
}

}  // namespace
}  // namespace chc::transport
