// Schedule-exploration fuzzer: permutes cross-instance interleavings and
// re-checks each instance independently.
//
// A fixed batch of lossy/crashy instances is pushed through the service
// under seeded permutations of (submission order, shard count, queue
// capacity) — each permutation yields a different cross-instance
// interleaving of shard workers over the shared intern table, memo tables
// and geometry pool. For every schedule:
//   * each instance's decisions must be bit-identical to the reference
//     (solo semantics — interleaving must be invisible), and
//   * each instance's trace stream must independently pass the offline
//     invariant checker (obs::checker): validity, union-form round
//     containment, Lemma 3 contraction, ε-agreement, the I_Z floor.
//
// Seed count defaults to a quick local sweep; the nightly deep-fuzz CI job
// raises it via CHC_SVC_FUZZ_SEEDS (100 seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/lossy.hpp"
#include "geometry/polytope.hpp"
#include "net/policy.hpp"
#include "obs/checker.hpp"
#include "svc/service.hpp"

namespace chc::svc {
namespace {

std::size_t fuzz_seeds() {
  if (const char* env = std::getenv("CHC_SVC_FUZZ_SEEDS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 6;
}

/// The fixed batch every schedule permutes: mixed crash styles and lossy
/// presets in d = 2 (the adversary-fuzz envelope, smaller rates so every
/// instance decides quickly).
std::vector<InstanceSpec> make_batch() {
  static constexpr core::CrashStyle kStyles[] = {
      core::CrashStyle::kNone, core::CrashStyle::kEarly,
      core::CrashStyle::kMidBroadcast, core::CrashStyle::kLate};
  std::vector<InstanceSpec> specs;
  for (std::uint64_t i = 0; i < 8; ++i) {
    InstanceSpec spec;
    spec.id = i;
    spec.run.base.cc = core::CCConfig{.n = 5, .f = 1, .d = 2, .eps = 0.15};
    spec.run.base.crash_style = kStyles[i % 4];
    spec.run.base.seed = 900 + i;
    if (i % 2 == 1) {
      spec.run.policy = net::NetworkPolicy::lossy(0.10, 0.03, 0.05);
      spec.run.reliable = true;
    } else {
      spec.run.reliable = false;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Reference decisions, established once through a single-shard service
/// (the differential suite ties single-shard to solo bit-for-bit).
std::map<std::uint64_t, std::vector<std::vector<geo::Vec>>> reference_decisions(
    const std::vector<InstanceSpec>& specs) {
  std::map<std::uint64_t, std::vector<std::vector<geo::Vec>>> ref;
  for (const InstanceResult& r : run_batch(specs, /*shards=*/1)) {
    std::vector<std::vector<geo::Vec>> per_process;
    for (sim::ProcessId p = 0; p < r.out.trace->n(); ++p) {
      const auto& dec = r.out.trace->of(p).decision;
      per_process.push_back(dec.has_value() ? dec->vertices()
                                            : std::vector<geo::Vec>{});
    }
    ref.emplace(r.id, std::move(per_process));
  }
  return ref;
}

bool same_vertices(const std::vector<geo::Vec>& a,
                   const std::vector<geo::Vec>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

TEST(ScheduleFuzz, PermutedInterleavingsPreserveResultsAndInvariants) {
  const std::vector<InstanceSpec> batch = make_batch();
  const auto ref = reference_decisions(batch);
  const std::size_t seeds = fuzz_seeds();

  for (std::size_t s = 0; s < seeds; ++s) {
    Rng rng(7000 + s);
    // A seeded schedule: shuffled submission order, random shard count and
    // a small queue bound so admission interleaves with execution.
    std::vector<InstanceSpec> specs = batch;
    for (std::size_t i = specs.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(specs[i - 1], specs[j]);
    }
    ServiceConfig cfg;
    cfg.shards = static_cast<std::size_t>(rng.uniform_int(1, 4));
    cfg.queue_capacity = static_cast<std::size_t>(rng.uniform_int(1, 3));
    const std::string ctx = "schedule seed " + std::to_string(7000 + s) +
                            " shards=" + std::to_string(cfg.shards) +
                            " cap=" + std::to_string(cfg.queue_capacity);

    ConsensusService service(std::move(cfg));
    for (InstanceSpec& spec : specs) service.submit(std::move(spec));
    service.drain();
    const std::vector<InstanceResult> results = service.take_results();
    ASSERT_EQ(results.size(), batch.size()) << ctx;

    for (const InstanceResult& r : results) {
      const std::string ictx = ctx + " instance=" + std::to_string(r.id);
      ASSERT_TRUE(r.error.empty()) << ictx << ": " << r.error;
      EXPECT_TRUE(r.ok) << ictx;

      // Interleaving must be invisible in the decisions.
      const auto& expected = ref.at(r.id);
      for (sim::ProcessId p = 0; p < r.out.trace->n(); ++p) {
        const auto& dec = r.out.trace->of(p).decision;
        const std::vector<geo::Vec> got =
            dec.has_value() ? dec->vertices() : std::vector<geo::Vec>{};
        EXPECT_TRUE(same_vertices(got, expected[p]))
            << ictx << " process " << p;
      }

      // Each per-instance trace stream is independently verifiable.
      const obs::CheckReport report = obs::check_trace_lines(r.trace_lines);
      EXPECT_TRUE(report.ok())
          << ictx << ": "
          << (report.parsed ? obs::describe(report.violations.front())
                            : report.parse_error);
      EXPECT_GT(report.snapshots_checked, 0u) << ictx;
    }
  }
}

}  // namespace
}  // namespace chc::svc
