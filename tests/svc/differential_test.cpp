// Differential determinism of the sharded service (the tentpole contract):
// for every spec in a sweep over shard counts {1, 2, 4}, dimensions
// d ∈ {1, 2, 3}, crash patterns and lossy presets, each batched instance's
// decision polytopes AND its full per-instance trace stream must be
// byte-identical to running that instance alone through
// core::run_cc_lossy_custom. The shared state between concurrent instances
// (interned geometry, combo memo tables, the geometry thread pool) must be
// invisible in results.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/lossy.hpp"
#include "core/workload.hpp"
#include "geometry/polytope.hpp"
#include "net/policy.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"

namespace chc::svc {
namespace {

struct Scenario {
  const char* name;
  core::CrashStyle crash;
  net::NetworkPolicy policy;
  bool reliable;
};

const Scenario kScenarios[] = {
    {"clean", core::CrashStyle::kNone, net::NetworkPolicy{}, false},
    {"crash-mid", core::CrashStyle::kMidBroadcast, net::NetworkPolicy{},
     false},
    {"lossy-early-crash", core::CrashStyle::kEarly,
     net::NetworkPolicy::lossy(0.15, 0.05, 0.10), true},
    // Unshimmed lossy: generally fails to decide — the differential
    // contract covers failing executions too (the truncated trace and the
    // partial state must match the solo run byte for byte).
    {"lossy-unshimmed", core::CrashStyle::kNone,
     net::NetworkPolicy::lossy(0.10, 0.0, 0.0), false},
};

core::CCConfig config_for_dim(std::size_t d) {
  switch (d) {
    case 1:
      return core::CCConfig{.n = 4, .f = 1, .d = 1, .eps = 0.05};
    case 2:
      return core::CCConfig{.n = 5, .f = 1, .d = 2, .eps = 0.15};
    default:
      return core::CCConfig{.n = 6, .f = 1, .d = 3, .eps = 0.2};
  }
}

/// The batch the sweep runs for one dimension: every scenario x seed pair,
/// ids dense from 0 so every shard count partitions them differently.
std::vector<InstanceSpec> make_batch(std::size_t d) {
  std::vector<InstanceSpec> specs;
  std::uint64_t id = 0;
  for (const Scenario& sc : kScenarios) {
    for (std::uint64_t seed : {11u, 42u, 1234u}) {
      InstanceSpec spec;
      spec.id = id++;
      spec.run.base.cc = config_for_dim(d);
      spec.run.base.crash_style = sc.crash;
      spec.run.base.seed = seed;
      spec.run.policy = sc.policy;
      spec.run.reliable = sc.reliable;
      if (!sc.reliable && sc.policy.enabled()) {
        spec.run.max_events = 2'000'000;  // raw lossy runs may stall; cap
      }
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

/// The solo baseline: exactly what the service does for one instance, but
/// alone in the process-global default configuration.
struct SoloRun {
  core::LossyRunOutput out;
  std::vector<std::string> trace_lines;
};

SoloRun run_solo(const InstanceSpec& spec) {
  SoloRun solo;
  obs::MemorySink sink;
  obs::Tracer tracer(&sink);
  core::LossyRunConfig lc = spec.run;
  lc.tracer = &tracer;
  const core::RunConfig& rc = lc.base;
  const core::Workload w = core::make_workload(
      rc.cc.n, rc.cc.f, rc.cc.d, rc.pattern, rc.seed,
      rc.cc.fault_model == core::FaultModel::kCrashIncorrectInputs);
  solo.out = core::run_cc_lossy_custom(lc, w);
  solo.trace_lines = sink.lines();
  return solo;
}

/// Bitwise equality of two optional decision polytopes.
bool same_decision(const std::optional<geo::Polytope>& a,
                   const std::optional<geo::Polytope>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  if (a->ambient_dim() != b->ambient_dim()) return false;
  if (a->vertices().size() != b->vertices().size()) return false;
  for (std::size_t i = 0; i < a->vertices().size(); ++i) {
    if (!(a->vertices()[i] == b->vertices()[i])) return false;
  }
  return true;
}

class DifferentialTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DifferentialTest, BatchedMatchesSoloBitForBit) {
  const std::size_t d = GetParam();
  const std::vector<InstanceSpec> specs = make_batch(d);

  std::vector<SoloRun> solo;
  solo.reserve(specs.size());
  for (const InstanceSpec& spec : specs) solo.push_back(run_solo(spec));

  for (std::size_t shards : {1u, 2u, 4u}) {
    std::vector<InstanceResult> results = run_batch(specs, shards);
    ASSERT_EQ(results.size(), specs.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const InstanceResult& r = results[i];
      const SoloRun& s = solo[r.id];
      const std::string ctx = std::string("d=") + std::to_string(d) +
                              " shards=" + std::to_string(shards) +
                              " instance=" + std::to_string(r.id);
      ASSERT_TRUE(r.error.empty()) << ctx << ": " << r.error;
      EXPECT_EQ(r.ok, s.out.quiescent && s.out.cert.all_decided &&
                          s.out.cert.validity && s.out.cert.agreement)
          << ctx;
      // Decision polytopes: bitwise identical per process.
      for (sim::ProcessId p = 0; p < r.out.trace->n(); ++p) {
        EXPECT_TRUE(same_decision(r.out.trace->of(p).decision,
                                  s.out.trace->of(p).decision))
            << ctx << " process " << p;
      }
      // The whole trace stream: byte identical, line for line.
      ASSERT_EQ(r.trace_lines.size(), s.trace_lines.size()) << ctx;
      for (std::size_t l = 0; l < r.trace_lines.size(); ++l) {
        ASSERT_EQ(r.trace_lines[l], s.trace_lines[l])
            << ctx << " trace line " << l;
      }
      // Certificates agree on the quantitative story too.
      EXPECT_EQ(r.out.cert.rounds, s.out.cert.rounds) << ctx;
      EXPECT_EQ(r.out.cert.max_pairwise_hausdorff,
                s.out.cert.max_pairwise_hausdorff)
          << ctx;
      EXPECT_EQ(r.out.stats.messages_sent, s.out.stats.messages_sent) << ctx;
      EXPECT_EQ(r.out.stats.retransmits, s.out.stats.retransmits) << ctx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DifferentialTest, ::testing::Values(1u, 2u, 3u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace chc::svc
