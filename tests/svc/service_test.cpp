// Service-layer mechanics: shard resolution, bounded-queue backpressure
// with admission accounting, per-instance trace files on disk, failure
// isolation, and result ordering.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/lossy.hpp"
#include "obs/checker.hpp"
#include "obs/metrics.hpp"

namespace chc::svc {
namespace {

InstanceSpec quick_spec(std::uint64_t id, std::uint64_t seed) {
  InstanceSpec spec;
  spec.id = id;
  spec.run.base.cc = core::CCConfig{.n = 5, .f = 1, .d = 2, .eps = 0.15};
  spec.run.base.crash_style = core::CrashStyle::kNone;
  spec.run.base.seed = seed;
  spec.run.reliable = false;
  return spec;
}

TEST(Service, ExplicitShardCountWinsOverEnvironment) {
  setenv("CHC_SVC_SHARDS", "3", 1);
  {
    ServiceConfig cfg;
    cfg.shards = 2;
    ConsensusService service(std::move(cfg));
    EXPECT_EQ(service.shards(), 2u);
  }
  {
    ConsensusService service(ServiceConfig{});  // shards = 0: env decides
    EXPECT_EQ(service.shards(), 3u);
  }
  unsetenv("CHC_SVC_SHARDS");
}

TEST(Service, ResultsAreTaggedAndSortedById) {
  obs::Registry metrics;
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.metrics = &metrics;
  ConsensusService service(std::move(cfg));
  // Submit out of id order; take_results must return 1,2,3,4 sorted.
  for (std::uint64_t id : {4u, 2u, 1u, 3u}) {
    service.submit(quick_spec(id, 100 + id));
  }
  service.drain();
  const auto results = service.take_results();
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].id, i + 1);
    EXPECT_TRUE(results[i].ok) << "instance " << results[i].id;
    EXPECT_EQ(results[i].shard, results[i].id % 2);
  }
  EXPECT_EQ(metrics.counter("svc.admitted").value(), 4u);
  EXPECT_EQ(metrics.counter("svc.completed").value(), 4u);
  EXPECT_EQ(metrics.gauge("svc.shards").value(), 2.0);
  // take_results clears the buffer.
  EXPECT_TRUE(service.take_results().empty());
}

TEST(Service, BoundedQueueRejectsAndCountsAdmission) {
  obs::Registry metrics;
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.queue_capacity = 1;
  cfg.metrics = &metrics;
  ConsensusService service(std::move(cfg));

  // Submissions are microseconds apart while each instance runs for
  // milliseconds, so the single-slot queue must fill and refuse quickly.
  std::uint64_t id = 0;
  std::size_t admitted = 0;
  bool rejected = false;
  while (!rejected && id < 64) {
    if (service.try_submit(quick_spec(id, 500 + id))) {
      ++admitted;
    } else {
      rejected = true;
    }
    ++id;
  }
  EXPECT_TRUE(rejected) << "queue never filled after 64 instant submissions";
  service.drain();
  EXPECT_EQ(service.take_results().size(), admitted);
  EXPECT_EQ(metrics.counter("svc.admitted").value(), admitted);
  EXPECT_GE(metrics.counter("svc.rejected").value(), 1u);
  EXPECT_EQ(metrics.counter("svc.submitted").value(),
            metrics.counter("svc.admitted").value() +
                metrics.counter("svc.rejected").value());
  // Blocking submit absorbs the same pressure instead of refusing.
  for (std::uint64_t i = 0; i < 6; ++i) {
    service.submit(quick_spec(100 + i, 700 + i));
  }
  service.drain();
  EXPECT_EQ(service.take_results().size(), 6u);
  EXPECT_EQ(metrics.counter("svc.failed").value(), 0u);
}

TEST(Service, WritesCheckableTraceFilePerInstance) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "chc_svc_trace_test").string();
  std::filesystem::remove_all(dir);
  {
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.trace_dir = dir;
    ConsensusService service(std::move(cfg));
    for (std::uint64_t id : {0u, 1u, 2u}) {
      service.submit(quick_spec(id, 40 + id));
    }
    service.drain();
    ASSERT_EQ(service.take_results().size(), 3u);
  }
  for (std::uint64_t id : {0u, 1u, 2u}) {
    const std::string path = dir + "/instance_" + std::to_string(id) + ".jsonl";
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    const obs::CheckReport report = obs::check_trace_file(path);
    EXPECT_TRUE(report.ok())
        << path << ": "
        << (report.parsed ? obs::describe(report.violations.front())
                          : report.parse_error);
  }
  std::filesystem::remove_all(dir);
}

TEST(Service, FailedInstanceIsIsolated) {
  obs::Registry metrics;
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.metrics = &metrics;
  ConsensusService service(std::move(cfg));

  // A malformed spec (workload size != n) throws inside the harness; the
  // worker must survive and later instances still complete.
  InstanceSpec bad = quick_spec(0, 1);
  bad.workload = core::Workload{};  // no inputs
  service.submit(std::move(bad));
  service.submit(quick_spec(1, 2));
  service.drain();
  const auto results = service.take_results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_TRUE(results[1].ok);
  EXPECT_EQ(metrics.counter("svc.failed").value(), 1u);
  EXPECT_EQ(metrics.counter("svc.completed").value(), 1u);
}

TEST(Service, UntracedInstanceHasNoStream) {
  ConsensusService service([] {
    ServiceConfig cfg;
    cfg.shards = 1;
    return cfg;
  }());
  InstanceSpec spec = quick_spec(0, 9);
  spec.trace = false;
  service.submit(std::move(spec));
  service.drain();
  const auto results = service.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[0].trace_lines.empty());
}

}  // namespace
}  // namespace chc::svc
