// Threaded-runtime tests: the same protocol code certified on the
// discrete-event simulator must also work on real threads.
#include "rt/runtime.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "core/process_cc.hpp"
#include "geometry/polytope.hpp"
#include "net/faulty_link.hpp"

namespace chc::rt {
namespace {

constexpr int kTagPing = 1;

/// Counts deliveries; broadcasts once on start if asked.
class Counter final : public sim::Process {
 public:
  explicit Counter(bool broadcaster) : broadcaster_(broadcaster) {}
  void on_start(sim::Context& ctx) override {
    if (broadcaster_) ctx.broadcast_others(kTagPing, int{7});
  }
  void on_message(sim::Context&, const sim::Message& msg) override {
    EXPECT_EQ(std::any_cast<int>(msg.payload), 7);
    ++received_;
  }
  int received() const { return received_; }

 private:
  bool broadcaster_;
  int received_ = 0;
};

class TimerOnce final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override { ctx.set_timer(2.0, 5); }
  void on_message(sim::Context&, const sim::Message&) override {}
  void on_timer(sim::Context&, int token) override {
    EXPECT_EQ(token, 5);
    fired_ = true;
  }
  bool fired() const { return fired_; }

 private:
  bool fired_ = false;
};

TEST(ThreadedRuntime, BroadcastReachesEveryone) {
  ThreadedRuntime rt(4, 1, std::make_unique<sim::UniformDelay>(0.1, 1.0), {});
  for (std::size_t p = 0; p < 4; ++p) {
    rt.add_process(std::make_unique<Counter>(p == 0));
  }
  rt.start();
  const bool done = rt.run_until(
      [](ThreadedRuntime& r) {
        for (std::size_t p = 1; p < 4; ++p) {
          const int got = r.with_process(
              p, [](sim::Process& proc) {
                return static_cast<Counter&>(proc).received();
              });
          if (got < 1) return false;
        }
        return true;
      },
      5.0);
  rt.stop();
  EXPECT_TRUE(done);
  EXPECT_EQ(rt.messages_sent(), 3u);
  EXPECT_EQ(rt.messages_delivered(), 3u);
}

TEST(ThreadedRuntime, TimersFire) {
  ThreadedRuntime rt(1, 2, std::make_unique<sim::FixedDelay>(1.0), {});
  rt.add_process(std::make_unique<TimerOnce>());
  rt.start();
  const bool done = rt.run_until(
      [](ThreadedRuntime& r) {
        return r.with_process(0, [](sim::Process& p) {
          return static_cast<TimerOnce&>(p).fired();
        });
      },
      5.0);
  rt.stop();
  EXPECT_TRUE(done);
}

TEST(ThreadedRuntime, CrashAfterSendsTruncatesBroadcast) {
  sim::CrashSchedule cs;
  cs.set(0, sim::CrashPlan::after(2));
  ThreadedRuntime rt(5, 3, std::make_unique<sim::FixedDelay>(0.5), cs);
  for (std::size_t p = 0; p < 5; ++p) {
    rt.add_process(std::make_unique<Counter>(p == 0));
  }
  rt.start();
  rt.run_until([](ThreadedRuntime& r) { return r.messages_delivered() >= 2; },
               5.0);
  rt.stop();
  EXPECT_TRUE(rt.crashed(0));
  EXPECT_EQ(rt.messages_sent(), 2u);
}

TEST(ThreadedRuntime, AlgorithmCcEndToEnd) {
  // Full Algorithm CC on real threads: all fault-free processes decide and
  // their decisions satisfy validity and eps-agreement.
  const core::CCConfig cfg{.n = 5, .f = 1, .d = 2, .eps = 0.1};
  sim::CrashSchedule cs;
  cs.set(4, sim::CrashPlan::after(40));  // mid-protocol crash
  ThreadedRuntime rt(cfg.n, 7,
                     std::make_unique<sim::UniformDelay>(0.05, 0.2), cs);
  const std::vector<geo::Vec> inputs = {
      geo::Vec{0.0, 0.0}, geo::Vec{1.0, 0.0}, geo::Vec{0.0, 1.0},
      geo::Vec{1.0, 1.0}, geo::Vec{1.8, 1.9}};  // process 4: incorrect
  for (std::size_t p = 0; p < cfg.n; ++p) {
    rt.add_process(std::make_unique<core::CCProcess>(cfg, inputs[p], nullptr));
  }
  rt.start();
  const bool done = rt.run_until(
      [](ThreadedRuntime& r) {
        for (std::size_t p = 0; p < 4; ++p) {
          const bool decided = r.with_process(p, [](sim::Process& proc) {
            return static_cast<core::CCProcess&>(proc)
                .decision()
                .has_value();
          });
          if (!decided) return false;
        }
        return true;
      },
      30.0);
  rt.stop();
  ASSERT_TRUE(done) << "processes did not decide within the timeout";

  std::vector<geo::Polytope> decisions;
  for (std::size_t p = 0; p < 4; ++p) {
    decisions.push_back(rt.with_process(p, [](sim::Process& proc) {
      return *static_cast<core::CCProcess&>(proc).decision();
    }));
  }
  const geo::Polytope correct_hull = geo::Polytope::from_points(
      {inputs[0], inputs[1], inputs[2], inputs[3]});
  for (const auto& dec : decisions) {
    EXPECT_TRUE(correct_hull.contains(dec, 1e-6));
  }
  for (std::size_t a = 0; a < decisions.size(); ++a) {
    for (std::size_t b = a + 1; b < decisions.size(); ++b) {
      EXPECT_LT(geo::hausdorff(decisions[a], decisions[b]), cfg.eps);
    }
  }
}

/// Records the first draws from the per-process RNG stream (Context::rng).
class RngProbe final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    for (int i = 0; i < 8; ++i) draws_.push_back(ctx.rng().next_u64());
  }
  void on_message(sim::Context&, const sim::Message&) override {}
  const std::vector<std::uint64_t>& draws() const { return draws_; }

 private:
  std::vector<std::uint64_t> draws_;
};

TEST(ThreadedRuntime, ProcessRngStreamsDeriveFromRuntimeSeed) {
  // Regression: per-process RNG streams must be a pure function of
  // (runtime seed, process id) — not a fixed default seed, and not shared
  // between processes.
  auto collect = [](std::uint64_t seed) {
    ThreadedRuntime rt(3, seed, std::make_unique<sim::FixedDelay>(1.0), {});
    for (std::size_t p = 0; p < 3; ++p) {
      rt.add_process(std::make_unique<RngProbe>());
    }
    rt.start();
    rt.run_until(
        [](ThreadedRuntime& r) {
          for (std::size_t p = 0; p < 3; ++p) {
            const bool ready = r.with_process(p, [](sim::Process& proc) {
              return static_cast<RngProbe&>(proc).draws().size() == 8u;
            });
            if (!ready) return false;
          }
          return true;
        },
        5.0);
    std::vector<std::vector<std::uint64_t>> draws;
    for (std::size_t p = 0; p < 3; ++p) {
      draws.push_back(rt.with_process(p, [](sim::Process& proc) {
        return static_cast<RngProbe&>(proc).draws();
      }));
    }
    rt.stop();
    return draws;
  };
  const auto a = collect(11);
  const auto b = collect(11);
  EXPECT_EQ(a, b) << "same seed must reproduce every process stream";
  EXPECT_NE(a[0], a[1]) << "processes must not share one stream";
  EXPECT_NE(a[1], a[2]);
  const auto c = collect(12);
  EXPECT_NE(a[0], c[0]) << "streams must depend on the runtime seed";
}

TEST(ThreadedRuntime, MidBroadcastCrashUnderMessageLoss) {
  // Combined adversary: the broadcaster crashes after two wire sends AND
  // the network is lossy. The crash budget is consumed before injection,
  // so exactly two sends are accepted and every accepted send is either
  // delivered or counted as injector-dropped.
  sim::CrashSchedule cs;
  cs.set(0, sim::CrashPlan::after(2));
  ThreadedRuntime rt(5, 21, std::make_unique<sim::FixedDelay>(0.5), cs);
  rt.set_fault_model(std::make_unique<net::FaultyLinkModel>(
      net::NetworkPolicy::lossy(0.4)));
  for (std::size_t p = 0; p < 5; ++p) {
    rt.add_process(std::make_unique<Counter>(p == 0));
  }
  rt.start();
  rt.run_until(
      [](ThreadedRuntime& r) {
        return r.messages_delivered() + r.messages_lost() >= 2;
      },
      5.0);
  rt.stop();
  EXPECT_TRUE(rt.crashed(0));
  EXPECT_EQ(rt.messages_sent(), 2u);
  EXPECT_EQ(rt.messages_delivered() + rt.messages_lost(), 2u);
}

TEST(ThreadedRuntime, StopIsIdempotentAndDestructorSafe) {
  auto rt = std::make_unique<ThreadedRuntime>(
      2, 9, std::make_unique<sim::FixedDelay>(1.0), sim::CrashSchedule{});
  rt->add_process(std::make_unique<Counter>(true));
  rt->add_process(std::make_unique<Counter>(false));
  rt->start();
  rt->stop();
  rt->stop();  // no-op
  rt.reset();  // destructor must not deadlock
  SUCCEED();
}

TEST(ThreadedRuntime, RejectsDoubleStartAndOverRegistration) {
  ThreadedRuntime rt(1, 1, std::make_unique<sim::FixedDelay>(1.0), {});
  rt.add_process(std::make_unique<Counter>(false));
  EXPECT_THROW(rt.add_process(std::make_unique<Counter>(false)),
               ContractViolation);
  rt.start();
  EXPECT_THROW(rt.start(), ContractViolation);
  rt.stop();
}

}  // namespace
}  // namespace chc::rt
