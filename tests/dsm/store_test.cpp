// Direct tests of the quorum-replicated grow-only store underneath the
// stable vector.
#include "dsm/store.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "common/check.hpp"
#include "sim/simulation.hpp"

namespace chc::dsm {
namespace {

/// Host that writes its value, then runs a fixed number of collects and
/// records each result.
class StoreHost final : public sim::Process {
 public:
  StoreHost(std::size_t n, std::size_t f, int collects,
            std::vector<std::vector<View>>* log)
      : n_(n), f_(f), collects_left_(collects), log_(log) {}

  void on_start(sim::Context& ctx) override {
    store_ = std::make_unique<GrowOnlyStore>(n_, f_, ctx.self());
    store_->write(ctx, geo::Vec{static_cast<double>(ctx.self())},
                  [this](sim::Context& c) { next_collect(c); });
  }

  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    store_->on_message(ctx, msg);
  }

  const GrowOnlyStore& store() const { return *store_; }

 private:
  void next_collect(sim::Context& ctx) {
    if (collects_left_-- <= 0) return;
    store_->collect(ctx, [this](sim::Context& c, const View& v) {
      (*log_)[c.self()].push_back(v);
      next_collect(c);
    });
  }

  std::size_t n_, f_;
  int collects_left_;
  std::vector<std::vector<View>>* log_;
  std::unique_ptr<GrowOnlyStore> store_;
};

TEST(GrowOnlyStore, CollectsAreMonotonePerProcess) {
  // Successive collects by one process never lose entries.
  const std::size_t n = 5, f = 2;
  std::vector<std::vector<View>> log(n);
  sim::Simulation sim(n, 3, std::make_unique<sim::UniformDelay>(0.1, 1.0), {});
  for (sim::ProcessId p = 0; p < n; ++p) {
    sim.add_process(std::make_unique<StoreHost>(n, f, 4, &log));
  }
  EXPECT_TRUE(sim.run().quiescent);
  for (sim::ProcessId p = 0; p < n; ++p) {
    ASSERT_EQ(log[p].size(), 4u);
    for (std::size_t k = 1; k < log[p].size(); ++k) {
      for (std::size_t slot = 0; slot < n; ++slot) {
        if (log[p][k - 1][slot].has_value()) {
          EXPECT_TRUE(log[p][k][slot].has_value())
              << "process " << p << " lost slot " << slot;
        }
      }
    }
    // Own write always visible in own collects.
    EXPECT_TRUE(log[p][0][p].has_value());
  }
}

TEST(GrowOnlyStore, CollectsEventuallyComplete) {
  const std::size_t n = 4, f = 1;
  std::vector<std::vector<View>> log(n);
  sim::Simulation sim(n, 9, std::make_unique<sim::ExponentialDelay>(0.4), {});
  for (sim::ProcessId p = 0; p < n; ++p) {
    sim.add_process(std::make_unique<StoreHost>(n, f, 6, &log));
  }
  EXPECT_TRUE(sim.run().quiescent);
  // The last collect of every process sees all n writes (nobody crashed and
  // six collect rounds exceed any write latency here).
  for (sim::ProcessId p = 0; p < n; ++p) {
    EXPECT_EQ(view_count(log[p].back()), n);
  }
}

TEST(GrowOnlyStore, CrashedWriterMayBePartiallyVisible) {
  // A writer that crashes mid-write leaves its value on <= quorum replicas;
  // collects either surface it or not, but never inconsistently within one
  // process's monotone sequence (covered above). Here: just verify the
  // system stays live and the crashed writer's own absence is tolerated.
  const std::size_t n = 5, f = 2;
  sim::CrashSchedule cs;
  cs.set(0, sim::CrashPlan::after(2));  // dies mid write-broadcast
  std::vector<std::vector<View>> log(n);
  sim::Simulation sim(n, 17, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      cs);
  for (sim::ProcessId p = 0; p < n; ++p) {
    sim.add_process(std::make_unique<StoreHost>(n, f, 3, &log));
  }
  EXPECT_TRUE(sim.run().quiescent);
  for (sim::ProcessId p = 1; p < n; ++p) {
    ASSERT_EQ(log[p].size(), 3u) << "live process stalled";
    EXPECT_GE(view_count(log[p].back()), n - 1);  // all live writes land
  }
}

TEST(GrowOnlyStore, WriteOnceEnforced) {
  class DoubleWriter final : public sim::Process {
   public:
    void on_start(sim::Context& ctx) override {
      GrowOnlyStore store(3, 1, ctx.self());
      store.write(ctx, geo::Vec{1.0}, [](sim::Context&) {});
      EXPECT_THROW(store.write(ctx, geo::Vec{2.0}, [](sim::Context&) {}),
                   ContractViolation);
    }
    void on_message(sim::Context&, const sim::Message&) override {}
  };
  sim::Simulation sim(3, 1, std::make_unique<sim::FixedDelay>(1.0), {});
  for (int i = 0; i < 3; ++i) sim.add_process(std::make_unique<DoubleWriter>());
  sim.run(100000);
}

TEST(ViewHelpers, EqualIgnoresValuesComparesPresence) {
  View a(2), b(2);
  a[0] = geo::Vec{1.0};
  b[0] = geo::Vec{1.0};
  EXPECT_TRUE(view_equal(a, b));
  b[1] = geo::Vec{9.0};
  EXPECT_FALSE(view_equal(a, b));
  EXPECT_FALSE(view_equal(a, View(3)));
}

}  // namespace
}  // namespace chc::dsm
