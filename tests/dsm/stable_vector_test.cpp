#include "dsm/stable_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>

#include "common/check.hpp"
#include "dsm/store.hpp"
#include "sim/simulation.hpp"

namespace chc::dsm {
namespace {

/// Host process running exactly one stable-vector instance.
class SvHost final : public sim::Process {
 public:
  SvHost(std::size_t n, std::size_t f, geo::Vec input,
         std::vector<std::optional<StableVectorResult>>* results)
      : n_(n), f_(f), input_(std::move(input)), results_(results) {}

  void on_start(sim::Context& ctx) override {
    sv_ = std::make_unique<StableVector>(n_, f_, ctx.self());
    sv_->start(ctx, input_,
               [this](sim::Context& c, const StableVectorResult& r) {
                 (*results_)[c.self()] = r;
               });
  }

  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    sv_->on_message(ctx, msg);
  }

  void on_timer(sim::Context& ctx, int token) override {
    sv_->on_timer(ctx, token);
  }

 private:
  std::size_t n_, f_;
  geo::Vec input_;
  std::vector<std::optional<StableVectorResult>>* results_;
  std::unique_ptr<StableVector> sv_;
};

struct SvRun {
  std::vector<std::optional<StableVectorResult>> results;
  std::vector<bool> crashed;
};

SvRun run_stable_vector(std::size_t n, std::size_t f,
                        const sim::CrashSchedule& cs, std::uint64_t seed,
                        std::unique_ptr<sim::DelayModel> delay = nullptr) {
  if (!delay) delay = std::make_unique<sim::UniformDelay>(0.1, 1.0);
  SvRun out;
  out.results.resize(n);
  sim::Simulation sim(n, seed, std::move(delay), cs);
  for (sim::ProcessId p = 0; p < n; ++p) {
    sim.add_process(std::make_unique<SvHost>(
        n, f, geo::Vec{static_cast<double>(p), 0.0}, &out.results));
  }
  const auto rr = sim.run();
  EXPECT_TRUE(rr.quiescent);
  out.crashed.resize(n);
  for (sim::ProcessId p = 0; p < n; ++p) out.crashed[p] = sim.crashed(p);
  return out;
}

std::set<sim::ProcessId> origins(const StableVectorResult& r) {
  std::set<sim::ProcessId> s;
  for (const auto& [o, v] : r) s.insert(o);
  return s;
}

void expect_liveness_and_containment(const SvRun& run, std::size_t n,
                                     std::size_t f) {
  std::vector<std::set<sim::ProcessId>> views;
  for (sim::ProcessId p = 0; p < n; ++p) {
    if (run.crashed[p]) continue;
    // Liveness: every non-crashed process finished with >= n - f entries.
    ASSERT_TRUE(run.results[p].has_value()) << "process " << p << " stuck";
    const auto view = origins(*run.results[p]);
    EXPECT_GE(view.size(), n - f) << "process " << p;
    // Own input must be present.
    EXPECT_TRUE(view.count(p)) << "process " << p;
    views.push_back(view);
  }
  // Containment: pairwise subset in one direction or the other.
  for (std::size_t a = 0; a < views.size(); ++a) {
    for (std::size_t b = a + 1; b < views.size(); ++b) {
      const bool ab = std::includes(views[b].begin(), views[b].end(),
                                    views[a].begin(), views[a].end());
      const bool ba = std::includes(views[a].begin(), views[a].end(),
                                    views[b].begin(), views[b].end());
      EXPECT_TRUE(ab || ba) << "containment violated between views";
    }
  }
}

TEST(GrowOnlyStore, RejectsBadQuorumConfig) {
  EXPECT_THROW(GrowOnlyStore(4, 2, 0), ContractViolation);  // n < 2f+1
  EXPECT_THROW(GrowOnlyStore(3, 1, 3), ContractViolation);  // id out of range
}

TEST(ViewHelpers, CountAndEquality) {
  View a(3), b(3);
  EXPECT_EQ(view_count(a), 0u);
  EXPECT_TRUE(view_equal(a, b));
  a[1] = geo::Vec{1.0};
  EXPECT_EQ(view_count(a), 1u);
  EXPECT_FALSE(view_equal(a, b));
  b[1] = geo::Vec{2.0};  // same mask; single-writer makes values equal in use
  EXPECT_TRUE(view_equal(a, b));
}

TEST(StableVector, FaultFreeAllSeeEverything) {
  const std::size_t n = 5, f = 1;
  const auto run = run_stable_vector(n, f, {}, 42);
  for (sim::ProcessId p = 0; p < n; ++p) {
    ASSERT_TRUE(run.results[p].has_value());
    EXPECT_EQ(origins(*run.results[p]).size(), n);  // nobody crashed
  }
  expect_liveness_and_containment(run, n, f);
}

TEST(StableVector, ValuesMatchOrigins) {
  const auto run = run_stable_vector(4, 1, {}, 7);
  for (const auto& r : run.results) {
    ASSERT_TRUE(r.has_value());
    for (const auto& [origin, value] : *r) {
      EXPECT_DOUBLE_EQ(value[0], static_cast<double>(origin));
    }
  }
}

TEST(StableVector, SurvivesEarlyCrashes) {
  const std::size_t n = 7, f = 2;
  sim::CrashSchedule cs;
  cs.set(2, sim::CrashPlan::after(3));   // dies inside its write broadcast
  cs.set(5, sim::CrashPlan::after(0));   // totally silent
  const auto run = run_stable_vector(n, f, cs, 11);
  expect_liveness_and_containment(run, n, f);
}

TEST(StableVector, SurvivesMidProtocolCrashes) {
  const std::size_t n = 7, f = 2;
  sim::CrashSchedule cs;
  cs.set(1, sim::CrashPlan::after(10));
  cs.set(3, sim::CrashPlan::at(1.5));
  const auto run = run_stable_vector(n, f, cs, 13);
  expect_liveness_and_containment(run, n, f);
}

TEST(StableVector, ContainmentPropertySweep) {
  // Property sweep: random crash budgets across many seeds; Containment and
  // Liveness must hold in every execution (this is the load-bearing
  // property for Algorithm CC's optimality).
  const std::size_t n = 5, f = 2;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::CrashSchedule cs;
    cs.set((seed % n), sim::CrashPlan::after(seed % 17));
    cs.set((seed * 3 + 1) % n, sim::CrashPlan::after((seed * 7) % 23));
    const auto run = run_stable_vector(n, f, cs, 1000 + seed);
    expect_liveness_and_containment(run, n, f);
  }
}

TEST(StableVector, SlowProcessStillIncluded) {
  // A lagged (but correct) process must eventually finish and its view must
  // contain its own input; others may or may not include it.
  const std::size_t n = 5, f = 1;
  auto delay = std::make_unique<sim::LaggedSetDelay>(
      std::make_unique<sim::UniformDelay>(0.1, 1.0),
      std::set<sim::ProcessId>{4}, 40.0);
  const auto run = run_stable_vector(n, f, {}, 17, std::move(delay));
  expect_liveness_and_containment(run, n, f);
  ASSERT_TRUE(run.results[4].has_value());
}

class DoubleStart final : public sim::Process {
 public:
  explicit DoubleStart(bool* done) : done_(done) {}
  void on_start(sim::Context& ctx) override {
    StableVector sv(3, 1, ctx.self());
    sv.start(ctx, geo::Vec{0.0}, [](sim::Context&, const auto&) {});
    EXPECT_THROW(
        sv.start(ctx, geo::Vec{0.0}, [](sim::Context&, const auto&) {}),
        ContractViolation);
    *done_ = true;
  }
  void on_message(sim::Context&, const sim::Message&) override {}

 private:
  bool* done_;
};

TEST(StableVector, OneShotEnforced) {
  // Calling start twice must trip the contract.
  bool done = false;
  sim::Simulation sim(3, 1, std::make_unique<sim::FixedDelay>(1.0), {});
  sim.add_process(std::make_unique<DoubleStart>(&done));
  sim.add_process(std::make_unique<DoubleStart>(&done));
  sim.add_process(std::make_unique<DoubleStart>(&done));
  sim.run(10000);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace chc::dsm
