// Intern table bounding and combo-cache sharding.
//
// PR 2 left the intern table process-global and unbounded: every distinct
// polytope value ever interned kept a weak_ptr (and thus a live control
// block) in the table forever, so a long multi-instance run grew memory
// monotonically. The table is now LRU-bounded; these tests pin the bound,
// the LRU order, handle stability across eviction, and the per-thread
// ComboCache override the sharded service installs.
#include "geometry/intern.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geometry/polytope.hpp"
#include "geometry/vec.hpp"

namespace chc::geo {
namespace {

/// A distinct d=1 segment per index.
Polytope segment(double lo) {
  return Polytope::from_points({Vec{lo}, Vec{lo + 0.5}});
}

class InternTest : public ::testing::Test {
 protected:
  void SetUp() override { clear_intern_caches(); }
  void TearDown() override {
    set_intern_capacity(0);  // restore the CHC_INTERN_CAP / builtin default
    clear_intern_caches();
  }
};

TEST_F(InternTest, TableSizeIsBoundedUnderLongRuns) {
  set_intern_capacity(8);
  std::vector<PolytopeHandle> live;  // keep every handle alive: worst case
  for (int i = 0; i < 200; ++i) {
    live.push_back(intern(segment(static_cast<double>(i))));
    EXPECT_LE(intern_table_size(), 8u) << "after intern #" << i;
  }
  const InternStats s = intern_stats();
  EXPECT_EQ(s.intern_misses, 200u);
  EXPECT_EQ(s.intern_evictions, 192u);
  // Live handles are untouched by eviction.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(live[static_cast<std::size_t>(i)]->vertices()[0][0],
              static_cast<double>(i));
  }
}

TEST_F(InternTest, EvictionIsLeastRecentlyUsed) {
  set_intern_capacity(2);
  const PolytopeHandle a = intern(segment(0.0));
  const PolytopeHandle b = intern(segment(1.0));
  // Touch a: b becomes the LRU victim when c arrives.
  EXPECT_EQ(intern(segment(0.0)).get(), a.get());
  const PolytopeHandle c = intern(segment(2.0));
  EXPECT_EQ(intern(segment(0.0)).get(), a.get());  // still canonical
  EXPECT_EQ(intern(segment(2.0)).get(), c.get());  // still canonical
  // b was evicted: re-interning its value mints a new canonical object.
  EXPECT_NE(intern(segment(1.0)).get(), b.get());
}

TEST_F(InternTest, ShrinkingCapacityEvictsImmediately) {
  set_intern_capacity(16);
  std::vector<PolytopeHandle> live;
  for (int i = 0; i < 16; ++i) {
    live.push_back(intern(segment(static_cast<double>(i))));
  }
  EXPECT_EQ(intern_table_size(), 16u);
  set_intern_capacity(4);
  EXPECT_EQ(intern_table_size(), 4u);
  EXPECT_EQ(intern_capacity(), 4u);
}

TEST_F(InternTest, ThreadLocalComboCacheIsUsedAndTransparent) {
  const std::vector<PolytopeHandle> ops = {intern(segment(0.0)),
                                           intern(segment(1.0))};
  // Baseline through the process-global cache.
  const PolytopeHandle global_result =
      equal_weight_combination_interned(ops);

  ComboCache local(4);
  ComboCache* prev = set_thread_combo_cache(&local);
  ASSERT_EQ(prev, nullptr);
  const InternStats before = intern_stats();
  const PolytopeHandle r1 = equal_weight_combination_interned(ops);
  const PolytopeHandle r2 = equal_weight_combination_interned(ops);
  set_thread_combo_cache(prev);

  // The local cache memoized (one miss, one hit) and, because operands are
  // interned, the recomputed value re-interned onto the same object the
  // global-cache run produced: the memo table choice is invisible in
  // results.
  const InternStats after = intern_stats();
  EXPECT_EQ(after.combo_misses, before.combo_misses + 1);
  EXPECT_EQ(after.combo_hits, before.combo_hits + 1);
  EXPECT_EQ(local.size(), 1u);
  EXPECT_EQ(r1.get(), r2.get());
  EXPECT_EQ(r1.get(), global_result.get());
}

TEST_F(InternTest, ComboCacheEvictionRecomputesIdenticalValue) {
  ComboCache local(1);
  ComboCache* prev = set_thread_combo_cache(&local);
  const std::vector<PolytopeHandle> ops_a = {intern(segment(0.0)),
                                             intern(segment(1.0))};
  const std::vector<PolytopeHandle> ops_b = {intern(segment(2.0)),
                                             intern(segment(3.0))};
  const PolytopeHandle a1 = equal_weight_combination_interned(ops_a);
  const PolytopeHandle b1 = equal_weight_combination_interned(ops_b);  // evicts a
  EXPECT_EQ(local.size(), 1u);
  const PolytopeHandle a2 = equal_weight_combination_interned(ops_a);  // miss
  set_thread_combo_cache(prev);
  EXPECT_EQ(a1.get(), a2.get()) << "recomputation re-interned a new value";
  EXPECT_NE(a1.get(), b1.get());
}

}  // namespace
}  // namespace chc::geo
