#include "geometry/polytope.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace chc::geo {
namespace {

Polytope unit_square() {
  return Polytope::from_points({Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}});
}

TEST(Polytope, EmptyBehaviour) {
  const auto e = Polytope::empty(3);
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.ambient_dim(), 3u);
  EXPECT_FALSE(e.contains(Vec{0, 0, 0}));
  EXPECT_THROW(e.vertex_centroid(), ContractViolation);
  EXPECT_THROW(e.measure(), ContractViolation);
  EXPECT_THROW(e.halfspaces(), ContractViolation);
}

TEST(Polytope, SinglePoint) {
  const auto p = Polytope::from_points({Vec{1, 2, 3}});
  EXPECT_EQ(p.affine_dim(), 0u);
  EXPECT_EQ(p.vertices().size(), 1u);
  EXPECT_DOUBLE_EQ(p.measure(), 0.0);
  EXPECT_TRUE(p.contains(Vec{1, 2, 3}));
  EXPECT_FALSE(p.contains(Vec{1, 2, 3.1}));
  EXPECT_NEAR(p.distance(Vec{1, 2, 5}), 2.0, 1e-12);
}

TEST(Polytope, InteriorPointsDropped) {
  const auto p = Polytope::from_points(
      {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}, Vec{0.3, 0.7}, Vec{0.5, 0.5}});
  EXPECT_EQ(p.vertices().size(), 4u);
  EXPECT_EQ(p.affine_dim(), 2u);
}

TEST(Polytope, MultisetDuplicatesMerged) {
  const auto p = Polytope::from_points(
      {Vec{0, 0}, Vec{0, 0}, Vec{1, 0}, Vec{1, 0}, Vec{0, 1}});
  EXPECT_EQ(p.vertices().size(), 3u);
}

TEST(Polytope, SegmentInAmbient3d) {
  const auto p = Polytope::from_points({Vec{0, 0, 0}, Vec{1, 1, 1},
                                        Vec{0.5, 0.5, 0.5}});
  EXPECT_EQ(p.affine_dim(), 1u);
  EXPECT_EQ(p.vertices().size(), 2u);
  EXPECT_NEAR(p.measure(), std::sqrt(3.0), 1e-9);
  EXPECT_DOUBLE_EQ(p.volume(), 0.0);
  EXPECT_TRUE(p.contains(Vec{0.25, 0.25, 0.25}, 1e-9));
  EXPECT_FALSE(p.contains(Vec{0.25, 0.25, 0.30}, 1e-3));
}

TEST(Polytope, TriangleInAmbient3d) {
  const auto p = Polytope::from_points(
      {Vec{0, 0, 1}, Vec{1, 0, 1}, Vec{0, 1, 1}, Vec{0.2, 0.2, 1}});
  EXPECT_EQ(p.affine_dim(), 2u);
  EXPECT_EQ(p.vertices().size(), 3u);
  EXPECT_NEAR(p.measure(), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(p.volume(), 0.0);
  EXPECT_TRUE(p.contains(Vec{0.2, 0.2, 1}, 1e-9));
  EXPECT_FALSE(p.contains(Vec{0.2, 0.2, 1.5}, 1e-3));
  EXPECT_NEAR(p.distance(Vec{0.2, 0.2, 2.0}), 1.0, 1e-9);
}

TEST(Polytope, HalfspacesSatisfiedByVerticesOnly) {
  Rng rng(51);
  std::vector<Vec> pts;
  for (int i = 0; i < 25; ++i) {
    pts.push_back(Vec{rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  const auto p = Polytope::from_points(pts);
  // All original points satisfy the H-rep; a far point violates it.
  for (const Vec& q : pts) {
    for (const auto& h : p.halfspaces()) {
      EXPECT_LE(h.a.dot(q), h.b + 1e-8);
    }
  }
  bool violated = false;
  for (const auto& h : p.halfspaces()) {
    if (h.a.dot(Vec{10, 10}) > h.b + 1e-8) violated = true;
  }
  EXPECT_TRUE(violated);
}

TEST(Polytope, HalfspacesOfFlatIncludeEqualities) {
  const auto p = Polytope::from_points({Vec{0, 0, 1}, Vec{1, 0, 1}, Vec{0, 1, 1}});
  // z = 1 must be pinned: some halfspace pair forces it.
  double zmax = 1e100, zmin = -1e100;
  for (const auto& h : p.halfspaces()) {
    // For direction (0,0,1): upper bound h.b / component when a == +-e_z.
    if (std::fabs(h.a[0]) < 1e-9 && std::fabs(h.a[1]) < 1e-9) {
      if (h.a[2] > 0.5) zmax = std::min(zmax, h.b / h.a[2]);
      if (h.a[2] < -0.5) zmin = std::max(zmin, h.b / h.a[2]);
    }
  }
  EXPECT_NEAR(zmax, 1.0, 1e-9);
  EXPECT_NEAR(zmin, 1.0, 1e-9);
}

TEST(Polytope, NearestPointSquare) {
  const auto p = unit_square();
  EXPECT_TRUE(approx_eq(p.nearest_point(Vec{0.5, 0.5}), Vec{0.5, 0.5}, 1e-12));
  EXPECT_TRUE(approx_eq(p.nearest_point(Vec{2, 0.5}), Vec{1, 0.5}, 1e-12));
  EXPECT_TRUE(approx_eq(p.nearest_point(Vec{2, 2}), Vec{1, 1}, 1e-12));
  EXPECT_TRUE(approx_eq(p.nearest_point(Vec{-1, -1}), Vec{0, 0}, 1e-12));
}

TEST(Polytope, NearestPointCube3d) {
  std::vector<Vec> pts;
  for (int m = 0; m < 8; ++m) {
    pts.push_back(Vec{double(m & 1), double((m >> 1) & 1), double((m >> 2) & 1)});
  }
  const auto p = Polytope::from_points(pts);
  // Closed form for a box: clamp each coordinate.
  Rng rng(53);
  for (int i = 0; i < 40; ++i) {
    const Vec q{rng.uniform(-2, 3), rng.uniform(-2, 3), rng.uniform(-2, 3)};
    Vec expect(3);
    for (std::size_t c = 0; c < 3; ++c) expect[c] = std::clamp(q[c], 0.0, 1.0);
    EXPECT_NEAR(p.distance(q), expect.dist(q), 1e-6) << "query " << q;
  }
}

TEST(Polytope, SupportVertex) {
  const auto p = unit_square();
  EXPECT_TRUE(approx_eq(p.support(Vec{1, 1}), Vec{1, 1}, 1e-12));
  EXPECT_TRUE(approx_eq(p.support(Vec{-1, 0.1}), Vec{0, 1}, 1e-12));
}

TEST(Polytope, CentroidAndBoundingBox) {
  const auto p = unit_square();
  EXPECT_TRUE(approx_eq(p.vertex_centroid(), Vec{0.5, 0.5}, 1e-12));
  const auto [lo, hi] = p.bounding_box();
  EXPECT_TRUE(approx_eq(lo, Vec{0, 0}, 1e-12));
  EXPECT_TRUE(approx_eq(hi, Vec{1, 1}, 1e-12));
}

TEST(Polytope, VolumeSquareCubeSimplex) {
  EXPECT_NEAR(unit_square().volume(), 1.0, 1e-9);

  std::vector<Vec> cube;
  for (int m = 0; m < 8; ++m) {
    cube.push_back(Vec{double(m & 1) * 2, double((m >> 1) & 1) * 2,
                       double((m >> 2) & 1) * 2});
  }
  EXPECT_NEAR(Polytope::from_points(cube).volume(), 8.0, 1e-8);

  // Standard 3-simplex: volume 1/6.
  const auto simplex = Polytope::from_points(
      {Vec{0, 0, 0}, Vec{1, 0, 0}, Vec{0, 1, 0}, Vec{0, 0, 1}});
  EXPECT_NEAR(simplex.volume(), 1.0 / 6.0, 1e-9);
}

TEST(Polytope, BoxFactory) {
  const auto b = Polytope::box(Vec{-1, -2}, Vec{1, 2});
  EXPECT_EQ(b.vertices().size(), 4u);
  EXPECT_NEAR(b.volume(), 8.0, 1e-9);
  EXPECT_THROW(Polytope::box(Vec{1}, Vec{0}), ContractViolation);
}

TEST(Polytope, TranslateAndScale) {
  const auto p = unit_square().translated(Vec{2, 3});
  EXPECT_TRUE(p.contains(Vec{2.5, 3.5}));
  EXPECT_FALSE(p.contains(Vec{0.5, 0.5}));
  const auto s = unit_square().scaled(2.0);
  EXPECT_NEAR(s.volume(), 4.0, 1e-9);
  const auto z = unit_square().scaled(0.0);
  EXPECT_EQ(z.vertices().size(), 1u);  // collapses to the origin
}

TEST(Polytope, ContainsPolytope) {
  const auto big = unit_square().scaled(3.0);
  const auto small = unit_square().translated(Vec{0.5, 0.5});
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(Polytope::empty(2)));
  EXPECT_FALSE(Polytope::empty(2).contains(big));
}

TEST(Hausdorff, TranslatedSquares) {
  const auto a = unit_square();
  const auto b = unit_square().translated(Vec{0.5, 0});
  EXPECT_NEAR(hausdorff(a, b), 0.5, 1e-9);
  EXPECT_NEAR(hausdorff(a, a), 0.0, 1e-12);
}

TEST(Hausdorff, NestedPolytopes) {
  const auto outer = Polytope::box(Vec{-2, -2}, Vec{2, 2});
  const auto inner = Polytope::box(Vec{-1, -1}, Vec{1, 1});
  // Farthest point of outer from inner is a corner: distance sqrt(2).
  EXPECT_NEAR(hausdorff(outer, inner), std::sqrt(2.0), 1e-9);
}

TEST(Hausdorff, SymmetricAndTriangleInequality) {
  Rng rng(57);
  auto random_poly = [&]() {
    std::vector<Vec> pts;
    for (int i = 0; i < 8; ++i) {
      pts.push_back(Vec{rng.uniform(-1, 1), rng.uniform(-1, 1)});
    }
    return Polytope::from_points(pts);
  };
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = random_poly(), b = random_poly(), c = random_poly();
    const double ab = hausdorff(a, b);
    EXPECT_NEAR(ab, hausdorff(b, a), 1e-9);
    EXPECT_LE(ab, hausdorff(a, c) + hausdorff(c, b) + 1e-9);
  }
}

TEST(Polytope, ApproxEqual) {
  const auto a = unit_square();
  EXPECT_TRUE(approx_equal(a, a.translated(Vec{1e-9, 0}), 1e-7));
  EXPECT_FALSE(approx_equal(a, a.translated(Vec{0.1, 0}), 1e-7));
  EXPECT_TRUE(approx_equal(Polytope::empty(2), Polytope::empty(2)));
  EXPECT_FALSE(approx_equal(a, Polytope::empty(2)));
}

TEST(Polytope, DegenerateClusterWithinTolerance) {
  // Points clustered within 1e-12 collapse to a single vertex.
  const auto p = Polytope::from_points(
      {Vec{1, 1}, Vec{1 + 1e-13, 1}, Vec{1, 1 - 1e-13}});
  EXPECT_EQ(p.affine_dim(), 0u);
}

}  // namespace
}  // namespace chc::geo
