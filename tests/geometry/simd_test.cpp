// Differential tests for the batched SIMD predicates (geometry/simd.hpp).
//
// The contract under test is bit-identity: for every kernel, the AVX2 path
// must return exactly the bits the scalar fallback returns — same values,
// same argmax/argmin winner under first-wins ties — over randomized and
// adversarial inputs (collinear runs, exact duplicates, signed zeros) for
// d in 1..4. When AVX2 is not compiled in or the CPU lacks it the suite
// still runs scalar-vs-scalar (trivially green) and logs why.

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/simd.hpp"

namespace chc::geo {
namespace {

bool simd_testable() {
  if (!simd::avx2_compiled()) {
    // Keep the suite green but visible: scalar-vs-scalar is vacuous.
    std::fputs("[simd_test] AVX2 not compiled in; differential coverage "
               "is scalar-vs-scalar only\n", stderr);
    return false;
  }
  const bool prev = simd::set_enabled(true);
  const bool active = simd::avx2_active();
  simd::set_enabled(prev);
  if (!active) {
    std::fputs("[simd_test] CPU lacks AVX2; differential coverage is "
               "scalar-vs-scalar only\n", stderr);
  }
  return active;
}

/// Runs `body` twice — SIMD enabled then disabled — restoring the previous
/// dispatch setting afterwards, and hands each run a tag for messages.
template <typename F>
void both_paths(F body) {
  const bool prev = simd::set_enabled(true);
  body("avx2");
  simd::set_enabled(false);
  body("scalar");
  simd::set_enabled(prev);
}

struct Batch {
  std::size_t d = 0;
  std::vector<std::vector<double>> cols;  // cols[j][i] = coord j of point i
  std::vector<double> a;                  // direction / normal
  double b = 0.0;                         // offset

  std::size_t n() const { return cols.empty() ? 0 : cols[0].size(); }
  void ptrs(const double** xs) const {
    for (std::size_t j = 0; j < d; ++j) xs[j] = cols[j].data();
  }
};

/// Random batch with adversarial structure mixed in: duplicated points,
/// collinear runs (point i+1 = midpoint of i and i+2), signed zeros, and
/// coordinates at very different magnitudes.
Batch random_batch(std::mt19937_64& rng, std::size_t d, std::size_t n) {
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  std::uniform_int_distribution<int> kind(0, 9);
  Batch batch;
  batch.d = d;
  batch.cols.assign(d, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const int k = kind(rng);
    for (std::size_t j = 0; j < d; ++j) {
      double v = u(rng);
      if (k == 0) v = 0.0;
      if (k == 1) v = -0.0;
      if (k == 2) v = u(rng) * 1e-12;   // denormal-adjacent magnitudes
      if (k == 3) v = u(rng) * 1e12;
      if (k == 4 && i > 0) v = batch.cols[j][i - 1];  // exact duplicate
      if (k == 5 && i > 1) {  // exact midpoint -> collinear triple
        v = 0.5 * (batch.cols[j][i - 1] + batch.cols[j][i - 2]);
      }
      batch.cols[j][i] = v;
    }
  }
  batch.a.assign(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) batch.a[j] = u(rng);
  if (kind(rng) == 0) batch.a.assign(d, 0.0);  // zero direction: all dots 0
  batch.b = u(rng);
  return batch;
}

TEST(Simd, AffineEvalBitIdentical) {
  std::mt19937_64 rng(20260808);
  for (std::size_t d = 1; d <= 4; ++d) {
    for (int rep = 0; rep < 40; ++rep) {
      const Batch batch = random_batch(rng, d, 1 + rep % 37);
      const double* xs[4];
      batch.ptrs(xs);
      std::vector<double> scalar(batch.n()), vec(batch.n());
      both_paths([&](const char* tag) {
        std::vector<double>& out = simd::avx2_active() ? vec : scalar;
        simd::affine_eval(xs, d, batch.n(), batch.a.data(), batch.b,
                          out.data());
        (void)tag;
      });
      if (!simd_testable()) return;
      ASSERT_EQ(0, std::memcmp(scalar.data(), vec.data(),
                               batch.n() * sizeof(double)))
          << "d=" << d << " rep=" << rep;
    }
  }
}

TEST(Simd, AffineEvalIdxBitIdentical) {
  std::mt19937_64 rng(7);
  for (std::size_t d = 1; d <= 4; ++d) {
    for (int rep = 0; rep < 40; ++rep) {
      const Batch batch = random_batch(rng, d, 3 + rep % 29);
      const double* xs[4];
      batch.ptrs(xs);
      // A gather list with repeats and out-of-order entries.
      std::uniform_int_distribution<std::size_t> pick(0, batch.n() - 1);
      std::vector<std::size_t> idx(1 + rep % 23);
      for (std::size_t& i : idx) i = pick(rng);
      std::vector<double> scalar(idx.size()), vec(idx.size());
      both_paths([&](const char*) {
        std::vector<double>& out = simd::avx2_active() ? vec : scalar;
        simd::affine_eval_idx(xs, d, idx.data(), idx.size(), batch.a.data(),
                              batch.b, out.data());
      });
      if (!simd_testable()) return;
      ASSERT_EQ(0, std::memcmp(scalar.data(), vec.data(),
                               idx.size() * sizeof(double)))
          << "d=" << d << " rep=" << rep;
    }
  }
}

TEST(Simd, AllBelowAgrees) {
  std::mt19937_64 rng(42);
  for (std::size_t d = 1; d <= 4; ++d) {
    for (int rep = 0; rep < 60; ++rep) {
      Batch batch = random_batch(rng, d, 1 + rep % 31);
      const double* xs[4];
      batch.ptrs(xs);
      // Bias the bound so all three outcomes (all below, none, mixed) occur.
      const double bound = batch.b * ((rep % 3 == 0) ? 100.0 : 0.01);
      bool scalar = false, vec = false;
      both_paths([&](const char*) {
        bool& out = simd::avx2_active() ? vec : scalar;
        out = simd::all_below(xs, d, batch.n(), batch.a.data(), bound);
      });
      if (!simd_testable()) return;
      ASSERT_EQ(scalar, vec) << "d=" << d << " rep=" << rep;
    }
  }
}

TEST(Simd, ArgExtremaSameWinnerAndValue) {
  std::mt19937_64 rng(1234);
  for (std::size_t d = 1; d <= 4; ++d) {
    for (int rep = 0; rep < 60; ++rep) {
      Batch batch = random_batch(rng, d, 1 + rep % 41);
      // Force ties: copy point 0 over several later slots so first-wins
      // selection is actually exercised.
      if (batch.n() >= 4) {
        for (std::size_t j = 0; j < d; ++j) {
          batch.cols[j][batch.n() / 2] = batch.cols[j][0];
          batch.cols[j][batch.n() - 1] = batch.cols[j][0];
        }
      }
      const double* xs[4];
      batch.ptrs(xs);
      std::size_t s_max = 0, v_max = 0, s_min = 0, v_min = 0;
      double s_maxv = 0, v_maxv = 0, s_minv = 0, v_minv = 0;
      both_paths([&](const char*) {
        const bool vec = simd::avx2_active();
        std::size_t& imax = vec ? v_max : s_max;
        std::size_t& imin = vec ? v_min : s_min;
        double& mx = vec ? v_maxv : s_maxv;
        double& mn = vec ? v_minv : s_minv;
        imax = simd::argmax_dot(xs, d, batch.n(), batch.a.data(), &mx);
        imin = simd::argmin_dot(xs, d, batch.n(), batch.a.data(), &mn);
      });
      if (!simd_testable()) return;
      ASSERT_EQ(s_max, v_max) << "d=" << d << " rep=" << rep;
      ASSERT_EQ(s_min, v_min) << "d=" << d << " rep=" << rep;
      ASSERT_EQ(0, std::memcmp(&s_maxv, &v_maxv, sizeof(double)));
      ASSERT_EQ(0, std::memcmp(&s_minv, &v_minv, sizeof(double)));
    }
  }
}

TEST(Simd, Cross2BatchBitIdentical) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  for (int rep = 0; rep < 80; ++rep) {
    const std::size_t n = 1 + rep % 37;
    const double ax = u(rng), ay = u(rng);
    // Degenerate segments too: a == b makes every cross exactly 0.
    const double bx = (rep % 7 == 0) ? ax : u(rng);
    const double by = (rep % 7 == 0) ? ay : u(rng);
    std::vector<double> cx(n), cy(n);
    for (std::size_t i = 0; i < n; ++i) {
      cx[i] = (rep % 5 == 0) ? ax : u(rng);  // collinear-with-a candidates
      cy[i] = (rep % 5 == 0) ? ay : u(rng);
      if (i % 9 == 3) { cx[i] = 0.0; cy[i] = -0.0; }
    }
    std::vector<double> scalar(n), vec(n);
    both_paths([&](const char*) {
      std::vector<double>& out = simd::avx2_active() ? vec : scalar;
      simd::cross2_batch(ax, ay, bx, by, cx.data(), cy.data(), n, out.data());
    });
    if (!simd_testable()) return;
    ASSERT_EQ(0, std::memcmp(scalar.data(), vec.data(), n * sizeof(double)))
        << "rep=" << rep;
  }
}

TEST(Simd, SignedZeroAndInfPropagateIdentically) {
  if (!simd_testable()) GTEST_SKIP() << "AVX2 unavailable";
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> col0 = {0.0, -0.0, inf, -inf, 1e308, -1e308, 0.0};
  const std::vector<double> col1 = {-0.0, 0.0, -inf, inf, -1e308, 1e308, 0.0};
  const double* xs[2] = {col0.data(), col1.data()};
  const double a[2] = {1.0, -0.0};
  std::vector<double> scalar(col0.size()), vec(col0.size());
  both_paths([&](const char*) {
    std::vector<double>& out = simd::avx2_active() ? vec : scalar;
    simd::affine_eval(xs, 2, col0.size(), a, 0.0, out.data());
  });
  // NaNs from inf arithmetic must match bitwise too (memcmp, not ==).
  ASSERT_EQ(0,
            std::memcmp(scalar.data(), vec.data(),
                        col0.size() * sizeof(double)));
}

}  // namespace
}  // namespace chc::geo
