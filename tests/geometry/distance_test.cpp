#include "geometry/distance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "geometry/hull2d.hpp"

namespace chc::geo {
namespace {

TEST(NearestPointInHull, SingleVertex) {
  const Vec v = nearest_point_in_hull({Vec{1, 2, 3}}, Vec{0, 0, 0});
  EXPECT_TRUE(approx_eq(v, Vec{1, 2, 3}, 1e-12));
}

TEST(NearestPointInHull, SegmentProjection) {
  const std::vector<Vec> seg = {Vec{0, 0}, Vec{2, 0}};
  const Vec v = nearest_point_in_hull(seg, Vec{1, 5});
  EXPECT_TRUE(approx_eq(v, Vec{1, 0}, 1e-5));
}

TEST(NearestPointInHull, InsideReturnsQueryDistanceZero) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  const Vec v = nearest_point_in_hull(sq, Vec{0.5, 0.6});
  EXPECT_NEAR(v.dist(Vec{0.5, 0.6}), 0.0, 1e-5);
}

TEST(NearestPointInHull, MatchesPolygonPathOnRandom2d) {
  Rng rng(81);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec> pts;
    for (int i = 0; i < 10; ++i) {
      pts.push_back(Vec{rng.uniform(-1, 1), rng.uniform(-1, 1)});
    }
    const auto poly = hull2d(pts);
    if (poly.size() < 3) continue;
    for (int q = 0; q < 10; ++q) {
      const Vec query{rng.uniform(-3, 3), rng.uniform(-3, 3)};
      const double exact = point_polygon_distance(poly, query);
      const double fw = nearest_point_in_hull(poly, query).dist(query);
      EXPECT_NEAR(fw, exact, 1e-5) << "trial " << trial << " q " << q;
    }
  }
}

TEST(NearestPointInHull, CubeClampClosedForm3d) {
  std::vector<Vec> cube;
  for (int m = 0; m < 8; ++m) {
    cube.push_back(Vec{double(m & 1), double((m >> 1) & 1), double((m >> 2) & 1)});
  }
  Rng rng(83);
  for (int i = 0; i < 30; ++i) {
    const Vec q{rng.uniform(-2, 3), rng.uniform(-2, 3), rng.uniform(-2, 3)};
    Vec clamp(3);
    for (std::size_t c = 0; c < 3; ++c) clamp[c] = std::clamp(q[c], 0.0, 1.0);
    const double fw = nearest_point_in_hull(cube, q).dist(q);
    EXPECT_NEAR(fw, clamp.dist(q), 1e-5);
  }
}

TEST(NearestPointInHull, HighDimensionalSimplex) {
  // Standard simplex in R^6; query at the origin-opposite corner direction.
  std::vector<Vec> verts;
  for (std::size_t c = 0; c < 6; ++c) {
    Vec e(6, 0.0);
    e[c] = 1.0;
    verts.push_back(e);
  }
  // Nearest point of the simplex to the origin is the barycenter.
  const Vec v = nearest_point_in_hull(verts, Vec(6, 0.0));
  EXPECT_NEAR(v.dist(Vec(6, 1.0 / 6.0)), 0.0, 1e-4);
  EXPECT_NEAR(v.norm(), 1.0 / std::sqrt(6.0), 1e-5);
}

TEST(NearestPointInHull, ResultAlwaysInsideHull) {
  Rng rng(87);
  std::vector<Vec> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back(Vec{rng.normal(), rng.normal(), rng.normal()});
  }
  for (int q = 0; q < 20; ++q) {
    const Vec query{rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(-4, 4)};
    const Vec v = nearest_point_in_hull(pts, query);
    // v must be a convex combination: check via distance of v to the hull
    // being ~0 (reuse the same solver from a different start by symmetry:
    // distance from v to hull should be tiny).
    const double self = nearest_point_in_hull(pts, v).dist(v);
    EXPECT_LT(self, 1e-6);
  }
}

TEST(NearestPointInHull, EmptyRejected) {
  EXPECT_THROW(nearest_point_in_hull({}, Vec{0}), ContractViolation);
}

}  // namespace
}  // namespace chc::geo
