#include "geometry/quickhull.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "geometry/hull2d.hpp"

namespace chc::geo {
namespace {

std::vector<Vec> random_cloud(Rng& rng, int n, std::size_t d) {
  std::vector<Vec> pts;
  for (int i = 0; i < n; ++i) {
    Vec p(d);
    for (std::size_t c = 0; c < d; ++c) p[c] = rng.uniform(-1, 1);
    pts.push_back(p);
  }
  return pts;
}

/// Every input point must satisfy every output facet inequality.
void expect_all_inside(const Hull& h, const std::vector<Vec>& pts,
                       double tol) {
  for (const auto& f : h.facets) {
    EXPECT_NEAR(f.normal.norm(), 1.0, 1e-9);
    for (const Vec& p : pts) {
      EXPECT_LE(f.normal.dot(p), f.offset + tol)
          << "point " << p << " outside facet";
    }
    // Facet vertices lie on the facet plane.
    for (std::size_t vi : f.verts) {
      EXPECT_NEAR(f.normal.dot(h.vertices[vi]), f.offset, tol);
    }
  }
}

TEST(Quickhull, OneDimensionalInterval) {
  const auto h = quickhull({Vec{3}, Vec{-1}, Vec{2}, Vec{0.5}});
  ASSERT_EQ(h.vertices.size(), 2u);
  EXPECT_EQ(h.facets.size(), 2u);
  double lo = h.vertices[0][0], hi = h.vertices[1][0];
  if (lo > hi) std::swap(lo, hi);
  EXPECT_DOUBLE_EQ(lo, -1.0);
  EXPECT_DOUBLE_EQ(hi, 3.0);
}

TEST(Quickhull, TriangleIsItsOwnHull) {
  const std::vector<Vec> tri = {Vec{0, 0}, Vec{1, 0}, Vec{0, 1}};
  const auto h = quickhull(tri);
  EXPECT_EQ(h.vertices.size(), 3u);
  EXPECT_EQ(h.facets.size(), 3u);
  expect_all_inside(h, tri, 1e-9);
}

TEST(Quickhull, SquareWithInteriorPoints2d) {
  const std::vector<Vec> pts = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1},
                                Vec{0.5, 0.5}, Vec{0.2, 0.7}};
  const auto h = quickhull(pts);
  EXPECT_EQ(h.vertices.size(), 4u);
  EXPECT_EQ(h.facets.size(), 4u);
  expect_all_inside(h, pts, 1e-9);
}

TEST(Quickhull, MatchesHull2dOnRandomClouds) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = random_cloud(rng, 40, 2);
    const auto h = quickhull(pts);
    const auto ref = hull2d(pts);
    EXPECT_EQ(h.vertices.size(), ref.size()) << "trial " << trial;
    for (const Vec& v : h.vertices) {
      const bool found = std::any_of(ref.begin(), ref.end(), [&](const Vec& r) {
        return approx_eq(v, r, 1e-9);
      });
      EXPECT_TRUE(found) << "vertex " << v << " not in reference hull";
    }
    expect_all_inside(h, pts, 1e-8);
  }
}

TEST(Quickhull, UnitCube3d) {
  std::vector<Vec> pts;
  for (int m = 0; m < 8; ++m) {
    pts.push_back(Vec{double(m & 1), double((m >> 1) & 1), double((m >> 2) & 1)});
  }
  pts.push_back(Vec{0.5, 0.5, 0.5});   // interior
  pts.push_back(Vec{0.5, 0.5, 1.0});   // on a face
  const auto h = quickhull(pts);
  EXPECT_EQ(h.vertices.size(), 8u);
  // Cube has 6 square faces = 12 simplicial facets.
  EXPECT_EQ(h.facets.size(), 12u);
  expect_all_inside(h, pts, 1e-9);
}

TEST(Quickhull, Simplex4d) {
  std::vector<Vec> pts = {Vec{0, 0, 0, 0}};
  for (std::size_t c = 0; c < 4; ++c) {
    Vec e(4, 0.0);
    e[c] = 1.0;
    pts.push_back(e);
  }
  pts.push_back(Vec{0.2, 0.2, 0.2, 0.2});  // interior
  const auto h = quickhull(pts);
  EXPECT_EQ(h.vertices.size(), 5u);
  EXPECT_EQ(h.facets.size(), 5u);
  expect_all_inside(h, pts, 1e-9);
}

TEST(Quickhull, CrossPolytope4d) {
  // The 4-D cross-polytope has 8 vertices and 16 facets.
  std::vector<Vec> pts;
  for (std::size_t c = 0; c < 4; ++c) {
    Vec e(4, 0.0);
    e[c] = 1.0;
    pts.push_back(e);
    pts.push_back(e * -1.0);
  }
  const auto h = quickhull(pts);
  EXPECT_EQ(h.vertices.size(), 8u);
  EXPECT_EQ(h.facets.size(), 16u);
  expect_all_inside(h, pts, 1e-9);
}

TEST(Quickhull, RandomClouds3dSoundness) {
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = random_cloud(rng, 60, 3);
    const auto h = quickhull(pts);
    expect_all_inside(h, pts, 1e-8);
    EXPECT_GE(h.vertices.size(), 4u);
    // Euler check for simplicial 3-polytopes: F = 2V - 4.
    EXPECT_EQ(h.facets.size(), 2 * h.vertices.size() - 4) << "trial " << trial;
  }
}

TEST(Quickhull, SpherePointsAllVertices) {
  // Points on a sphere are all extreme.
  Rng rng(41);
  std::vector<Vec> pts;
  for (int i = 0; i < 30; ++i) {
    Vec p{rng.normal(), rng.normal(), rng.normal()};
    pts.push_back(p * (1.0 / p.norm()));
  }
  const auto h = quickhull(pts);
  EXPECT_EQ(h.vertices.size(), pts.size());
}

TEST(Quickhull, DuplicatePointsTolerated) {
  const std::vector<Vec> pts = {Vec{0, 0}, Vec{0, 0}, Vec{1, 0}, Vec{1, 0},
                                Vec{0, 1}, Vec{0, 1}, Vec{0, 1}};
  const auto h = quickhull(pts);
  EXPECT_EQ(h.vertices.size(), 3u);
}

TEST(Quickhull, DegenerateInputRejected) {
  // Collinear points in 2-D do not span the plane.
  EXPECT_THROW(quickhull({Vec{0, 0}, Vec{1, 1}, Vec{2, 2}}), ContractViolation);
  // A single point in 1-D spans nothing.
  EXPECT_THROW(quickhull({Vec{5}, Vec{5}}), ContractViolation);
}

TEST(Quickhull, VolumeOfCubeViaFacets) {
  // Consistency: signed distance from centroid to each facet ~ 0.5 for the
  // unit cube centered query.
  std::vector<Vec> pts;
  for (int m = 0; m < 8; ++m) {
    pts.push_back(Vec{double(m & 1), double((m >> 1) & 1), double((m >> 2) & 1)});
  }
  const auto h = quickhull(pts);
  const Vec c{0.5, 0.5, 0.5};
  for (const auto& f : h.facets) {
    EXPECT_NEAR(f.offset - f.normal.dot(c), 0.5, 1e-9);
  }
}

}  // namespace
}  // namespace chc::geo
