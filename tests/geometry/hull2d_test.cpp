#include "geometry/hull2d.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace chc::geo {
namespace {

std::vector<Vec> random_cloud(Rng& rng, int n, double lo = -1, double hi = 1) {
  std::vector<Vec> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back(Vec{rng.uniform(lo, hi), rng.uniform(lo, hi)});
  }
  return pts;
}

/// Brute-force Minkowski sum: all pairwise sums, then hull.
std::vector<Vec> brute_minkowski(const std::vector<Vec>& p,
                                 const std::vector<Vec>& q) {
  std::vector<Vec> sums;
  for (const Vec& u : p) {
    for (const Vec& v : q) sums.push_back(u + v);
  }
  return hull2d(std::move(sums));
}

bool same_vertex_set(std::vector<Vec> a, std::vector<Vec> b, double tol) {
  if (a.size() != b.size()) return false;
  for (const Vec& u : a) {
    const bool found = std::any_of(b.begin(), b.end(), [&](const Vec& v) {
      return approx_eq(u, v, tol);
    });
    if (!found) return false;
  }
  return true;
}

TEST(Hull2d, SquareWithInteriorAndBoundaryPoints) {
  const auto h = hull2d({Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1},
                         Vec{0.5, 0.5}, Vec{0.5, 0.0}, Vec{1, 0.5}});
  EXPECT_EQ(h.size(), 4u);
  EXPECT_NEAR(polygon_area(h), 1.0, 1e-12);
}

TEST(Hull2d, OutputIsCcw) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = hull2d(random_cloud(rng, 30));
    ASSERT_GE(h.size(), 3u);
    EXPECT_GT(polygon_area(h), 0.0);
    // Every consecutive triple turns left.
    for (std::size_t i = 0; i < h.size(); ++i) {
      const double c = cross2(h[i], h[(i + 1) % h.size()], h[(i + 2) % h.size()]);
      EXPECT_GT(c, 0.0);
    }
  }
}

TEST(Hull2d, AllPointsInsideHull) {
  Rng rng(6);
  const auto pts = random_cloud(rng, 100);
  const auto h = hull2d(pts);
  for (const Vec& p : pts) {
    EXPECT_TRUE(polygon_contains(h, p, 1e-9));
  }
}

TEST(Hull2d, CollinearInputGivesSegment) {
  const auto h = hull2d({Vec{0, 0}, Vec{1, 1}, Vec{2, 2}, Vec{0.5, 0.5}});
  ASSERT_EQ(h.size(), 2u);
  EXPECT_TRUE(same_vertex_set(h, {Vec{0, 0}, Vec{2, 2}}, 1e-12));
}

TEST(Hull2d, IdenticalPointsGiveSinglePoint) {
  const auto h = hull2d({Vec{3, 4}, Vec{3, 4}, Vec{3, 4}});
  ASSERT_EQ(h.size(), 1u);
  EXPECT_TRUE(approx_eq(h[0], Vec{3, 4}, 1e-12));
}

TEST(Hull2d, EmptyInput) {
  EXPECT_TRUE(hull2d({}).empty());
}

TEST(PolygonArea, TriangleAndSquare) {
  EXPECT_NEAR(polygon_area({Vec{0, 0}, Vec{2, 0}, Vec{0, 3}}), 3.0, 1e-12);
  EXPECT_NEAR(polygon_area({Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}}), 1.0,
              1e-12);
  // CW orientation gives negative area.
  EXPECT_NEAR(polygon_area({Vec{0, 0}, Vec{0, 1}, Vec{1, 1}, Vec{1, 0}}), -1.0,
              1e-12);
}

TEST(PolygonContains, BoundaryAndInterior) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  EXPECT_TRUE(polygon_contains(sq, Vec{0.5, 0.5}, 1e-12));
  EXPECT_TRUE(polygon_contains(sq, Vec{0, 0}, 1e-12));
  EXPECT_TRUE(polygon_contains(sq, Vec{0.5, 0}, 1e-12));
  EXPECT_FALSE(polygon_contains(sq, Vec{1.01, 0.5}, 1e-9));
  EXPECT_FALSE(polygon_contains(sq, Vec{-0.01, 0.5}, 1e-9));
}

TEST(ClipHalfplane, SquareClippedToHalf) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{2, 0}, Vec{2, 2}, Vec{0, 2}};
  // Keep x <= 1.
  const auto clipped = clip_halfplane(sq, Vec{1, 0}, 1.0);
  EXPECT_NEAR(polygon_area(clipped), 2.0, 1e-9);
  for (const Vec& v : clipped) EXPECT_LE(v[0], 1.0 + 1e-9);
}

TEST(ClipHalfplane, NoOpWhenFullyInside) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  const auto clipped = clip_halfplane(sq, Vec{1, 0}, 5.0);
  EXPECT_NEAR(polygon_area(clipped), 1.0, 1e-12);
}

TEST(ClipHalfplane, EmptyWhenFullyOutside) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  EXPECT_TRUE(clip_halfplane(sq, Vec{1, 0}, -1.0).empty());
}

TEST(ClipHalfplane, DiagonalCutOfSquare) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  // x + y <= 1 keeps the lower-left triangle (area 1/2).
  const auto clipped = clip_halfplane(sq, Vec{1, 1}, 1.0);
  EXPECT_NEAR(polygon_area(clipped), 0.5, 1e-9);
}

TEST(ClipHalfplane, SegmentClipped) {
  const std::vector<Vec> seg = {Vec{0, 0}, Vec{2, 0}};
  const auto clipped = clip_halfplane(seg, Vec{1, 0}, 1.0);
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_TRUE(same_vertex_set(clipped, {Vec{0, 0}, Vec{1, 0}}, 1e-9));
}

TEST(Minkowski2d, TwoUnitSquares) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  const auto sum = minkowski_sum2d(sq, sq);
  EXPECT_EQ(sum.size(), 4u);
  EXPECT_NEAR(polygon_area(sum), 4.0, 1e-9);
}

TEST(Minkowski2d, SquarePlusTriangle) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  const std::vector<Vec> tri = {Vec{0, 0}, Vec{1, 0}, Vec{0, 1}};
  const auto sum = minkowski_sum2d(sq, tri);
  // Area(A+B) = area(A) + area(B) + mixed term; cross-check with brute force.
  const auto brute = brute_minkowski(sq, tri);
  EXPECT_NEAR(polygon_area(sum), polygon_area(brute), 1e-9);
  EXPECT_TRUE(same_vertex_set(sum, brute, 1e-9));
}

TEST(Minkowski2d, MatchesBruteForceOnRandomPolygons) {
  Rng rng(8);
  for (int trial = 0; trial < 25; ++trial) {
    const auto p = hull2d(random_cloud(rng, 12));
    const auto q = hull2d(random_cloud(rng, 12));
    if (p.size() < 3 || q.size() < 3) continue;
    const auto fast = minkowski_sum2d(p, q);
    const auto brute = brute_minkowski(p, q);
    EXPECT_TRUE(same_vertex_set(fast, brute, 1e-7))
        << "trial " << trial << ": " << fast.size() << " vs " << brute.size();
  }
}

TEST(Minkowski2d, DegeneratePointOperand) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  const auto sum = minkowski_sum2d(sq, {Vec{5, 5}});
  EXPECT_EQ(sum.size(), 4u);
  EXPECT_TRUE(polygon_contains(sum, Vec{5.5, 5.5}, 1e-9));
  EXPECT_NEAR(polygon_area(sum), 1.0, 1e-9);
}

TEST(Minkowski2d, SegmentOperandSweepsPolygon) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  const std::vector<Vec> seg = {Vec{0, 0}, Vec{2, 0}};
  const auto sum = minkowski_sum2d(sq, seg);
  EXPECT_NEAR(polygon_area(sum), 3.0, 1e-9);  // 1x1 square swept 2 in x
}

TEST(Minkowski2d, ParallelEdgesMerged) {
  // Two axis-aligned rectangles: parallel edges must not break the merge.
  const std::vector<Vec> r1 = {Vec{0, 0}, Vec{2, 0}, Vec{2, 1}, Vec{0, 1}};
  const std::vector<Vec> r2 = {Vec{0, 0}, Vec{1, 0}, Vec{1, 3}, Vec{0, 3}};
  const auto sum = minkowski_sum2d(r1, r2);
  EXPECT_EQ(sum.size(), 4u);
  EXPECT_NEAR(polygon_area(sum), 12.0, 1e-9);  // 3 x 4 rectangle
}

TEST(PointSegmentDistance, ProjectionAndEndpoints) {
  const Vec a{0, 0}, b{2, 0};
  EXPECT_NEAR(point_segment_distance(Vec{1, 1}, a, b), 1.0, 1e-12);
  EXPECT_NEAR(point_segment_distance(Vec{-1, 0}, a, b), 1.0, 1e-12);
  EXPECT_NEAR(point_segment_distance(Vec{3, 0}, a, b), 1.0, 1e-12);
  EXPECT_NEAR(point_segment_distance(Vec{1, 0}, a, b), 0.0, 1e-12);
  // Degenerate segment.
  EXPECT_NEAR(point_segment_distance(Vec{1, 1}, a, a), std::sqrt(2.0), 1e-12);
}

TEST(PointPolygonDistance, InsideIsZeroOutsidePositive) {
  const std::vector<Vec> sq = {Vec{0, 0}, Vec{1, 0}, Vec{1, 1}, Vec{0, 1}};
  EXPECT_NEAR(point_polygon_distance(sq, Vec{0.5, 0.5}), 0.0, 1e-12);
  EXPECT_NEAR(point_polygon_distance(sq, Vec{2, 0.5}), 1.0, 1e-12);
  EXPECT_NEAR(point_polygon_distance(sq, Vec{2, 2}), std::sqrt(2.0), 1e-12);
}

TEST(PolygonNearestPoint, MatchesDistance) {
  Rng rng(9);
  const auto poly = hull2d(random_cloud(rng, 20));
  for (int i = 0; i < 50; ++i) {
    const Vec p{rng.uniform(-3, 3), rng.uniform(-3, 3)};
    const Vec np = polygon_nearest_point(poly, p);
    EXPECT_TRUE(polygon_contains(poly, np, 1e-9));
    EXPECT_NEAR(np.dist(p), point_polygon_distance(poly, p), 1e-9);
  }
}

}  // namespace
}  // namespace chc::geo
