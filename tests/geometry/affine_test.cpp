#include "geometry/affine.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chc::geo {
namespace {

TEST(Affine, SinglePointHasDimZero) {
  const auto s = AffineSubspace::from_points({Vec{1, 2, 3}});
  EXPECT_EQ(s.dim(), 0u);
  EXPECT_EQ(s.ambient_dim(), 3u);
  EXPECT_TRUE(approx_eq(s.origin(), Vec{1, 2, 3}, 1e-15));
}

TEST(Affine, DuplicatePointsStayDimZero) {
  const auto s = AffineSubspace::from_points(
      {Vec{1, 1}, Vec{1, 1}, Vec{1.0 + 1e-13, 1}});
  EXPECT_EQ(s.dim(), 0u);
}

TEST(Affine, CollinearPointsAreDimOne) {
  const auto s = AffineSubspace::from_points(
      {Vec{0, 0, 0}, Vec{1, 1, 1}, Vec{2, 2, 2}, Vec{-3, -3, -3}});
  EXPECT_EQ(s.dim(), 1u);
}

TEST(Affine, CoplanarPointsAreDimTwo) {
  const auto s = AffineSubspace::from_points(
      {Vec{0, 0, 0}, Vec{1, 0, 0}, Vec{0, 1, 0}, Vec{3, -2, 0}});
  EXPECT_EQ(s.dim(), 2u);
}

TEST(Affine, GenericSimplexIsFullDim) {
  const auto s = AffineSubspace::from_points(
      {Vec{0, 0, 0}, Vec{1, 0, 0}, Vec{0, 1, 0}, Vec{0, 0, 1}});
  EXPECT_EQ(s.dim(), 3u);
}

TEST(Affine, ProjectLiftRoundTripOnFlat) {
  const std::vector<Vec> pts = {Vec{0, 0, 1}, Vec{1, 0, 1}, Vec{0, 1, 1}};
  const auto s = AffineSubspace::from_points(pts);
  ASSERT_EQ(s.dim(), 2u);
  for (const Vec& p : pts) {
    const Vec back = s.lift(s.project(p));
    EXPECT_TRUE(approx_eq(back, p, 1e-12)) << p << " -> " << back;
  }
}

TEST(Affine, BasisIsOrthonormal) {
  Rng rng(3);
  std::vector<Vec> pts;
  for (int i = 0; i < 8; ++i) {
    Vec p(4);
    for (int c = 0; c < 4; ++c) p[static_cast<std::size_t>(c)] = rng.normal();
    pts.push_back(p);
  }
  const auto s = AffineSubspace::from_points(pts);
  const auto& B = s.basis();
  for (std::size_t i = 0; i < B.size(); ++i) {
    EXPECT_NEAR(B[i].norm(), 1.0, 1e-10);
    for (std::size_t j = i + 1; j < B.size(); ++j) {
      EXPECT_NEAR(B[i].dot(B[j]), 0.0, 1e-10);
    }
  }
}

TEST(Affine, DistanceToFlat) {
  // The plane z = 1 in R^3.
  const auto s = AffineSubspace::from_points(
      {Vec{0, 0, 1}, Vec{1, 0, 1}, Vec{0, 1, 1}});
  EXPECT_NEAR(s.distance(Vec{5, -2, 1}), 0.0, 1e-12);
  EXPECT_NEAR(s.distance(Vec{5, -2, 4}), 3.0, 1e-12);
  EXPECT_TRUE(s.contains(Vec{9, 9, 1}, 1e-9));
  EXPECT_FALSE(s.contains(Vec{9, 9, 1.1}, 1e-9));
}

TEST(Affine, CanonicalIsIdentity) {
  const auto s = AffineSubspace::canonical(3);
  EXPECT_EQ(s.dim(), 3u);
  const Vec p{1.5, -2.25, 3.75};
  EXPECT_TRUE(approx_eq(s.project(p), p, 1e-15));
  EXPECT_TRUE(approx_eq(s.lift(p), p, 1e-15));
}

TEST(Affine, ScaleRelativeToleranceHandlesLargeCoordinates) {
  // Collinear points with magnitude 1e6: still detected as dim 1.
  const auto s = AffineSubspace::from_points(
      {Vec{1e6, 1e6}, Vec{2e6, 2e6}, Vec{3e6, 3e6 + 1e-5}});
  EXPECT_EQ(s.dim(), 1u);
}

TEST(Affine, RandomPointsInSubspaceRecovered) {
  // Random points in a random 2-D flat of R^5 must be detected as dim 2.
  Rng rng(17);
  Vec o(5), b1(5), b2(5);
  for (std::size_t c = 0; c < 5; ++c) {
    o[c] = rng.normal();
    b1[c] = rng.normal();
    b2[c] = rng.normal();
  }
  std::vector<Vec> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back(o + b1 * rng.uniform(-2, 2) + b2 * rng.uniform(-2, 2));
  }
  const auto s = AffineSubspace::from_points(pts);
  EXPECT_EQ(s.dim(), 2u);
  for (const Vec& p : pts) EXPECT_LT(s.distance(p), 1e-8);
}

}  // namespace
}  // namespace chc::geo
