// The d = 2 incremental combination path (ISSUE 7 tentpole part 4).
//
// equal_weight_combination_interned caches each operand's angle-sorted edge
// fan keyed on (handle, weight). When round r+1's membership differs from
// round r by one process — the common case under a single crash — the miss
// path rebuilds exactly one fan and reuses the rest. These tests prove the
// two load-bearing claims:
//  * bit-identity: the delta path returns the exact bits of a full
//    equal_weight_combination recomputation, across rounds of shifting
//    membership (a cached fan is a pure function of handle value and
//    weight, and the k-way merge is order-deterministic);
//  * the delta counters account for every fan: swapped-in operands miss,
//    survivors hit, and non-planar operands never touch the fan cache.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/intern.hpp"
#include "geometry/ops.hpp"
#include "geometry/polytope.hpp"
#include "geometry/vec.hpp"

namespace chc::geo {
namespace {

/// An irregular (asymmetric, no lattice alignment) pentagon around `c`.
Polytope pentagon(double cx, double cy, double r) {
  return Polytope::from_points({
      Vec{cx + r, cy + 0.1 * r},
      Vec{cx + 0.31 * r, cy + 0.97 * r},
      Vec{cx - 0.78 * r, cy + 0.55 * r},
      Vec{cx - 0.71 * r, cy - 0.62 * r},
      Vec{cx + 0.42 * r, cy - 0.83 * r},
  });
}

void expect_bitwise_equal(const Polytope& a, const Polytope& b,
                          const char* what) {
  ASSERT_EQ(a.ambient_dim(), b.ambient_dim()) << what;
  ASSERT_EQ(a.vertices().size(), b.vertices().size()) << what;
  for (std::size_t i = 0; i < a.vertices().size(); ++i) {
    const Vec& va = a.vertices()[i];
    const Vec& vb = b.vertices()[i];
    for (std::size_t j = 0; j < a.ambient_dim(); ++j) {
      const double x = va[j], y = vb[j];
      ASSERT_EQ(0, std::memcmp(&x, &y, sizeof(double)))
          << what << ": vertex " << i << " coord " << j << " differs: " << x
          << " vs " << y;
    }
  }
}

class ComboDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_intern_caches();
    prev_ = set_thread_combo_cache(&cache_);
  }
  void TearDown() override {
    set_thread_combo_cache(prev_);
    clear_intern_caches();
  }
  ComboCache cache_{64};
  ComboCache* prev_ = nullptr;
};

TEST_F(ComboDeltaTest, DeltaPathMatchesFullRecomputeBitwise) {
  constexpr std::size_t kOperands = 6;
  constexpr int kRounds = 9;
  std::vector<PolytopeHandle> round;
  for (std::size_t i = 0; i < kOperands; ++i) {
    round.push_back(intern(pentagon(static_cast<double>(i), 0.3 * i, 1.0 + 0.2 * i)));
  }
  // Swap one operand per round: the delta path reuses kOperands-1 cached
  // fans every round after the first, yet must still emit the bits a
  // from-scratch L would.
  for (int r = 0; r < kRounds; ++r) {
    const PolytopeHandle combined =
        equal_weight_combination_interned(round, 1e-9);
    std::vector<Polytope> values;
    for (const auto& h : round) values.push_back(*h);
    const Polytope full = equal_weight_combination(values, 1e-9);
    expect_bitwise_equal(*combined, full, "delta vs full recompute");

    const std::size_t slot = static_cast<std::size_t>(r) % kOperands;
    round[slot] =
        intern(pentagon(2.0 + 0.7 * r, -1.0 + 0.4 * r, 0.5 + 0.1 * r));
  }
  const InternStats s = intern_stats();
  // Every round was a distinct multiset (one combo miss each); survivors'
  // fans were reused.
  EXPECT_EQ(s.combo_misses, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(s.combo_delta_misses,
            kOperands + static_cast<std::uint64_t>(kRounds - 1));
  EXPECT_EQ(s.combo_delta_hits,
            static_cast<std::uint64_t>(kRounds - 1) * (kOperands - 1));
}

TEST_F(ComboDeltaTest, FanReuseCountersTrackMembershipChanges) {
  std::vector<PolytopeHandle> ops = {
      intern(pentagon(0.0, 0.0, 1.0)),
      intern(pentagon(3.0, 1.0, 2.0)),
      intern(pentagon(-2.0, 4.0, 1.5)),
      intern(pentagon(1.0, -3.0, 0.8)),
      intern(pentagon(5.0, 5.0, 1.1)),
  };
  // Round 1: cold cache — every fan is built.
  (void)equal_weight_combination_interned(ops, 1e-9);
  InternStats s = intern_stats();
  EXPECT_EQ(s.combo_misses, 1u);
  EXPECT_EQ(s.combo_delta_misses, 5u);
  EXPECT_EQ(s.combo_delta_hits, 0u);

  // Round 2: one process's state changed — one fan build, four reuses.
  ops[2] = intern(pentagon(9.0, 9.0, 0.7));
  (void)equal_weight_combination_interned(ops, 1e-9);
  s = intern_stats();
  EXPECT_EQ(s.combo_misses, 2u);
  EXPECT_EQ(s.combo_delta_misses, 6u);
  EXPECT_EQ(s.combo_delta_hits, 4u);

  // Round 3: identical multiset — memo hit, fans never consulted.
  (void)equal_weight_combination_interned(ops, 1e-9);
  s = intern_stats();
  EXPECT_EQ(s.combo_hits, 1u);
  EXPECT_EQ(s.combo_misses, 2u);
  EXPECT_EQ(s.combo_delta_misses, 6u);
  EXPECT_EQ(s.combo_delta_hits, 4u);
}

TEST_F(ComboDeltaTest, WeightChangesInvalidateFans) {
  // A fan is keyed on (handle, weight): the same operands at a different
  // arity must not reuse 1/5-scaled fans for a 1/4-weight combination.
  std::vector<PolytopeHandle> five = {
      intern(pentagon(0.0, 0.0, 1.0)), intern(pentagon(2.0, 0.0, 1.0)),
      intern(pentagon(0.0, 2.0, 1.0)), intern(pentagon(2.0, 2.0, 1.0)),
      intern(pentagon(1.0, 1.0, 1.0)),
  };
  (void)equal_weight_combination_interned(five, 1e-9);
  std::vector<PolytopeHandle> four(five.begin(), five.end() - 1);
  const PolytopeHandle combined =
      equal_weight_combination_interned(four, 1e-9);
  const InternStats s = intern_stats();
  EXPECT_EQ(s.combo_delta_misses, 9u);  // 5 at weight 1/5 + 4 at weight 1/4
  EXPECT_EQ(s.combo_delta_hits, 0u);
  std::vector<Polytope> values;
  for (const auto& h : four) values.push_back(*h);
  expect_bitwise_equal(*combined, equal_weight_combination(values, 1e-9),
                       "arity change");
}

TEST_F(ComboDeltaTest, NonPlanarOperandsBypassFanCache) {
  std::vector<PolytopeHandle> ops = {
      intern(Polytope::from_points(
          {Vec{0.0, 0.0, 0.0}, Vec{1.0, 0.0, 0.0}, Vec{0.0, 1.0, 0.0},
           Vec{0.0, 0.0, 1.0}})),
      intern(Polytope::from_points(
          {Vec{2.0, 0.0, 0.0}, Vec{3.0, 0.0, 0.0}, Vec{2.0, 1.0, 0.0},
           Vec{2.0, 0.0, 1.0}})),
  };
  const PolytopeHandle combined =
      equal_weight_combination_interned(ops, 1e-9);
  const InternStats s = intern_stats();
  EXPECT_EQ(s.combo_misses, 1u);
  EXPECT_EQ(s.combo_delta_hits, 0u);
  EXPECT_EQ(s.combo_delta_misses, 0u);
  std::vector<Polytope> values = {*ops[0], *ops[1]};
  expect_bitwise_equal(*combined, equal_weight_combination(values, 1e-9),
                       "d=3 fallback");
}

}  // namespace
}  // namespace chc::geo
