#include "geometry/simplify.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace chc::geo {
namespace {

std::vector<Vec> sphere_cloud(Rng& rng, std::size_t m, std::size_t d) {
  std::vector<Vec> pts;
  for (std::size_t i = 0; i < m; ++i) {
    Vec p(d);
    for (std::size_t c = 0; c < d; ++c) p[c] = rng.normal();
    pts.push_back(p * (1.0 / p.norm()));  // all extreme
  }
  return pts;
}

TEST(Simplify, NoOpWhenWithinBudget) {
  const auto p = Polytope::box(Vec{0, 0}, Vec{1, 1});
  const auto s = simplify(p, 8);
  EXPECT_EQ(s.vertices().size(), 4u);
  EXPECT_DOUBLE_EQ(simplification_error(p, s), 0.0);
}

TEST(Simplify, RespectsBudgetAndStaysInside) {
  Rng rng(21);
  const auto p = Polytope::from_points(sphere_cloud(rng, 60, 3));
  ASSERT_GT(p.vertices().size(), 12u);
  const auto s = simplify(p, 12);
  EXPECT_LE(s.vertices().size(), 12u);
  EXPECT_TRUE(p.contains(s, 1e-9));  // inner approximation
  EXPECT_GT(s.measure(), 0.0);
}

TEST(Simplify, ErrorShrinksWithBudget) {
  Rng rng(22);
  const auto p = Polytope::from_points(sphere_cloud(rng, 80, 3));
  const auto coarse = simplify(p, 6);
  const auto fine = simplify(p, 30);
  const double e_coarse = simplification_error(p, coarse);
  const double e_fine = simplification_error(p, fine);
  EXPECT_GT(e_coarse, 0.0);
  EXPECT_LE(e_fine, e_coarse);
  // For a unit ball, 30 support directions should get within ~0.5.
  EXPECT_LT(e_fine, 0.5);
}

TEST(Simplify, KeepsAxisExtremes) {
  // The +-axis supports are selected first: the simplified bounding box
  // matches the original along every axis.
  Rng rng(23);
  const auto p = Polytope::from_points(sphere_cloud(rng, 50, 3));
  const auto s = simplify(p, 7);
  const auto [plo, phi] = p.bounding_box();
  const auto [slo, shi] = s.bounding_box();
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(phi[c], shi[c], 1e-9);
    EXPECT_NEAR(plo[c], slo[c], 1e-9);
  }
}

TEST(Simplify, TwoDimensionalPolygon) {
  Rng rng(24);
  std::vector<Vec> pts;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(0, 6.283185307179586);
    pts.push_back(Vec{std::cos(a), std::sin(a)});
  }
  const auto p = Polytope::from_points(pts);
  const auto s = simplify(p, 8);
  EXPECT_LE(s.vertices().size(), 8u);
  EXPECT_TRUE(p.contains(s, 1e-9));
  EXPECT_GT(s.measure(), 2.0);  // still a fat polygon (circle area ~3.14)
}

TEST(Simplify, ContractChecks) {
  const auto p = Polytope::box(Vec{0, 0}, Vec{1, 1});
  EXPECT_THROW(simplify(p, 2), ContractViolation);        // < d+1
  EXPECT_THROW(simplify(Polytope::empty(2), 4), ContractViolation);
}

}  // namespace
}  // namespace chc::geo
