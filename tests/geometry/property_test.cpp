// Property-based sweeps over the geometry kernel: invariants that must hold
// on random inputs across dimensions, checked with parameterized suites.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "geometry/distance.hpp"
#include "geometry/hull2d.hpp"
#include "geometry/ops.hpp"
#include "geometry/polytope.hpp"

namespace chc::geo {
namespace {

std::vector<Vec> cloud(Rng& rng, std::size_t m, std::size_t d,
                       double lo = -1.0, double hi = 1.0) {
  std::vector<Vec> pts;
  pts.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    Vec p(d);
    for (std::size_t c = 0; c < d; ++c) p[c] = rng.uniform(lo, hi);
    pts.push_back(std::move(p));
  }
  return pts;
}

// ---------------------------------------------------------------------
// Hull properties across dimensions.
// ---------------------------------------------------------------------

class HullProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HullProperty, HullContainsAllInputPoints) {
  const std::size_t d = GetParam();
  Rng rng(100 + d);
  for (int trial = 0; trial < 8; ++trial) {
    const auto pts = cloud(rng, 12 + 4 * d, d);
    const auto p = Polytope::from_points(pts);
    for (const Vec& q : pts) {
      EXPECT_TRUE(p.contains(q, 1e-6)) << "d=" << d << " trial=" << trial;
    }
  }
}

TEST_P(HullProperty, VerticesAreASubsetOfInputs) {
  const std::size_t d = GetParam();
  Rng rng(200 + d);
  const auto pts = cloud(rng, 20, d);
  const auto p = Polytope::from_points(pts);
  for (const Vec& v : p.vertices()) {
    bool found = false;
    for (const Vec& q : pts) {
      if (approx_eq(v, q, 1e-9)) found = true;
    }
    EXPECT_TRUE(found) << "vertex " << v << " is not an input point";
  }
}

TEST_P(HullProperty, HullIsIdempotent) {
  const std::size_t d = GetParam();
  Rng rng(300 + d);
  const auto pts = cloud(rng, 18, d);
  const auto p = Polytope::from_points(pts);
  const auto q = Polytope::from_points(p.vertices());
  EXPECT_EQ(p.vertices().size(), q.vertices().size());
  EXPECT_LT(hausdorff(p, q), 1e-9);
}

TEST_P(HullProperty, HRepAndVRepConsistent) {
  // Every vertex satisfies every halfspace with near-equality on at least
  // one (vertices are on the boundary), and the centroid is interior for
  // full-dimensional polytopes.
  const std::size_t d = GetParam();
  Rng rng(400 + d);
  const auto pts = cloud(rng, 16, d);
  const auto p = Polytope::from_points(pts);
  ASSERT_EQ(p.affine_dim(), d);
  for (const Vec& v : p.vertices()) {
    for (const auto& hs : p.halfspaces()) {
      EXPECT_LE(hs.a.dot(v), hs.b + 1e-7);
    }
  }
  const Vec c = p.vertex_centroid();
  for (const auto& hs : p.halfspaces()) {
    EXPECT_LT(hs.a.dot(c), hs.b - 1e-12);
  }
}

TEST_P(HullProperty, MonotoneUnderPointAddition) {
  // Adding points can only grow the hull.
  const std::size_t d = GetParam();
  Rng rng(500 + d);
  auto pts = cloud(rng, 10, d);
  const auto small = Polytope::from_points(pts);
  const auto extra = cloud(rng, 6, d, -1.5, 1.5);
  pts.insert(pts.end(), extra.begin(), extra.end());
  const auto big = Polytope::from_points(pts);
  EXPECT_TRUE(big.contains(small, 1e-7));
  EXPECT_GE(big.measure(), small.measure() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dims, HullProperty, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------
// Function L (Definition 2) properties.
// ---------------------------------------------------------------------

class LProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LProperty, SupportFunctionIsWeightedSum) {
  // The support function of a weighted Minkowski sum is the weighted sum of
  // support functions — the defining identity of L.
  const std::size_t d = GetParam();
  Rng rng(600 + d);
  std::vector<Polytope> polys;
  for (int k = 0; k < 3; ++k) {
    polys.push_back(Polytope::from_points(cloud(rng, 8, d)));
  }
  const std::vector<double> w = {0.5, 0.3, 0.2};
  const auto l = linear_combination(polys, w);
  for (int t = 0; t < 20; ++t) {
    Vec dir(d);
    for (std::size_t c = 0; c < d; ++c) dir[c] = rng.normal();
    double expect = 0.0;
    for (std::size_t i = 0; i < polys.size(); ++i) {
      expect += w[i] * dir.dot(polys[i].support(dir));
    }
    EXPECT_NEAR(dir.dot(l.support(dir)), expect, 1e-6) << "d=" << d;
  }
}

TEST_P(LProperty, FoldingOrderIrrelevant) {
  // L([A,B,C]; w) must equal L([L([A,B]; w'), C]; ...) — pairwise folding
  // in any order gives the same polytope (Minkowski sum associativity).
  const std::size_t d = GetParam();
  Rng rng(700 + d);
  std::vector<Polytope> polys;
  for (int k = 0; k < 3; ++k) {
    polys.push_back(Polytope::from_points(cloud(rng, 6, d)));
  }
  const auto once = linear_combination(polys, {0.25, 0.25, 0.5});
  // Fold (A, B) first with renormalized weights, then combine with C.
  const auto ab = linear_combination({polys[0], polys[1]}, {0.5, 0.5});
  const auto two_step = linear_combination({ab, polys[2]}, {0.5, 0.5});
  EXPECT_LT(hausdorff(once, two_step), 1e-6) << "d=" << d;
}

TEST_P(LProperty, ValidityLemma5) {
  // If all operands are inside a region, L is inside that region.
  const std::size_t d = GetParam();
  Rng rng(800 + d);
  const auto region = Polytope::from_points(cloud(rng, 12 + 4 * d, d, -2, 2));
  std::vector<Polytope> polys;
  for (int k = 0; k < 3; ++k) {
    // Sample operand vertices from inside the region via convex combos.
    std::vector<Vec> pts;
    for (int i = 0; i < 5; ++i) {
      Vec x(d, 0.0);
      double wsum = 0.0;
      std::vector<double> w(region.vertices().size());
      for (auto& wi : w) {
        wi = rng.uniform(0, 1);
        wsum += wi;
      }
      for (std::size_t j = 0; j < region.vertices().size(); ++j) {
        x += region.vertices()[j] * (w[j] / wsum);
      }
      pts.push_back(std::move(x));
    }
    polys.push_back(Polytope::from_points(pts));
  }
  const auto l = linear_combination(polys, {0.4, 0.35, 0.25});
  EXPECT_TRUE(region.contains(l, 1e-6)) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Dims, LProperty, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Hausdorff distance metric properties.
// ---------------------------------------------------------------------

class HausdorffProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HausdorffProperty, MetricAxioms) {
  const std::size_t d = GetParam();
  Rng rng(900 + d);
  for (int trial = 0; trial < 6; ++trial) {
    const auto a = Polytope::from_points(cloud(rng, 8, d));
    const auto b = Polytope::from_points(cloud(rng, 8, d));
    const auto c = Polytope::from_points(cloud(rng, 8, d));
    const double ab = hausdorff(a, b);
    EXPECT_GE(ab, 0.0);
    EXPECT_NEAR(hausdorff(a, a), 0.0, 1e-9);
    EXPECT_NEAR(ab, hausdorff(b, a), 1e-7);
    EXPECT_LE(ab, hausdorff(a, c) + hausdorff(c, b) + 1e-6);
  }
}

TEST_P(HausdorffProperty, TranslationMatchesShift) {
  const std::size_t d = GetParam();
  Rng rng(1000 + d);
  const auto a = Polytope::from_points(cloud(rng, 10, d));
  Vec shift(d, 0.0);
  shift[0] = 0.75;
  EXPECT_NEAR(hausdorff(a, a.translated(shift)), 0.75, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Dims, HausdorffProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------
// Intersection properties across dimensions.
// ---------------------------------------------------------------------

class IntersectProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IntersectProperty, ContainedInEveryOperand) {
  const std::size_t d = GetParam();
  Rng rng(1100 + d);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Polytope> polys;
    for (int k = 0; k < 3; ++k) {
      polys.push_back(Polytope::from_points(cloud(rng, 8 + 4 * d, d)));
    }
    const auto inter = intersect(polys);
    if (inter.is_empty()) continue;
    for (const auto& p : polys) {
      EXPECT_TRUE(p.contains(inter, 1e-5)) << "d=" << d << " trial=" << trial;
    }
  }
}

TEST_P(IntersectProperty, IdempotentAndCommutative) {
  const std::size_t d = GetParam();
  Rng rng(1200 + d);
  const auto a = Polytope::from_points(cloud(rng, 10, d));
  const auto b = Polytope::from_points(cloud(rng, 10, d));
  const auto ab = intersect({a, b});
  const auto ba = intersect({b, a});
  const auto aa = intersect({a, a});
  ASSERT_EQ(ab.is_empty(), ba.is_empty());
  if (!ab.is_empty()) {
    EXPECT_LT(hausdorff(ab, ba), 1e-5);
  }
  EXPECT_LT(hausdorff(aa, a), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, IntersectProperty, ::testing::Values(2, 3));

// ---------------------------------------------------------------------
// Subset-hull intersection (line 5) properties.
// ---------------------------------------------------------------------

class SubsetHullProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SubsetHullProperty, TverbergNonEmptyAtBound) {
  // (d+1)f + 1 points with f = 1: non-empty in any dimension (Lemma 2).
  const std::size_t d = GetParam();
  Rng rng(1300 + d);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = cloud(rng, (d + 1) * 1 + 1, d);
    EXPECT_FALSE(intersection_of_subset_hulls(pts, 1).is_empty())
        << "d=" << d << " trial=" << trial;
  }
}

TEST_P(SubsetHullProperty, WitnessPointSurvivesEverySubset) {
  const std::size_t d = GetParam();
  Rng rng(1400 + d);
  const auto pts = cloud(rng, (d + 1) + 3, d);
  const auto core = intersection_of_subset_hulls(pts, 1);
  if (core.is_empty()) return;
  const Vec w = core.vertex_centroid();
  // w must lie in the hull of every (m-1)-subset.
  for (std::size_t drop = 0; drop < pts.size(); ++drop) {
    std::vector<Vec> sub;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (i != drop) sub.push_back(pts[i]);
    }
    EXPECT_TRUE(Polytope::from_points(sub).contains(w, 1e-5))
        << "d=" << d << " dropped " << drop;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SubsetHullProperty, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Nearest-point (Wolfe) properties.
// ---------------------------------------------------------------------

class NearestProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NearestProperty, ProjectionIsOptimalAgainstVertexGrid) {
  // The returned distance must beat every convex combination we can build
  // from a coarse grid of vertex weights.
  const std::size_t d = GetParam();
  Rng rng(1500 + d);
  const auto pts = cloud(rng, 6, d);
  const Vec q(d, 1.7);
  const Vec near = nearest_point_in_hull(pts, q);
  const double dist = near.dist(q);
  for (int trial = 0; trial < 200; ++trial) {
    Vec x(d, 0.0);
    double wsum = 0.0;
    std::vector<double> w(pts.size());
    for (auto& wi : w) {
      wi = rng.uniform(0, 1);
      wsum += wi;
    }
    for (std::size_t i = 0; i < pts.size(); ++i) {
      x += pts[i] * (w[i] / wsum);
    }
    EXPECT_GE(x.dist(q), dist - 1e-6) << "d=" << d;
  }
}

TEST_P(NearestProperty, ProjectionNondecreasingAlongRay) {
  // Moving the query further along the same outward ray increases distance.
  const std::size_t d = GetParam();
  Rng rng(1600 + d);
  const auto pts = cloud(rng, 8, d);
  Vec dir(d, 1.0);
  dir *= 1.0 / dir.norm();
  double prev = -1.0;
  for (double t = 2.0; t <= 5.0; t += 0.5) {
    const Vec q = dir * t;
    const double dist = nearest_point_in_hull(pts, q).dist(q);
    EXPECT_GT(dist, prev);
    prev = dist;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, NearestProperty, ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace chc::geo
