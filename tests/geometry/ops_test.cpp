#include "geometry/ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "geometry/hull2d.hpp"

namespace chc::geo {
namespace {

Polytope square(double lo, double hi) {
  return Polytope::box(Vec{lo, lo}, Vec{hi, hi});
}

TEST(IntersectHalfspaces, UnitBox2d) {
  const std::vector<Halfspace> hs = {
      {Vec{1, 0}, 1}, {Vec{-1, 0}, 0}, {Vec{0, 1}, 1}, {Vec{0, -1}, 0}};
  const auto p = intersect_halfspaces(2, hs);
  ASSERT_FALSE(p.is_empty());
  EXPECT_EQ(p.vertices().size(), 4u);
  EXPECT_NEAR(p.volume(), 1.0, 1e-7);
}

TEST(IntersectHalfspaces, InfeasibleIsEmpty) {
  const std::vector<Halfspace> hs = {{Vec{1, 0}, -1}, {Vec{-1, 0}, -1},
                                     {Vec{0, 1}, 1}, {Vec{0, -1}, 1}};
  EXPECT_TRUE(intersect_halfspaces(2, hs).is_empty());
}

TEST(IntersectHalfspaces, SimplexIn3d) {
  const std::vector<Halfspace> hs = {{Vec{-1, 0, 0}, 0},
                                     {Vec{0, -1, 0}, 0},
                                     {Vec{0, 0, -1}, 0},
                                     {Vec{1, 1, 1}, 1}};
  const auto p = intersect_halfspaces(3, hs);
  ASSERT_FALSE(p.is_empty());
  EXPECT_EQ(p.vertices().size(), 4u);
  EXPECT_NEAR(p.volume(), 1.0 / 6.0, 1e-7);
}

TEST(IntersectHalfspaces, FlatIntersectionRecovered) {
  // x = 0.5 pinned by a pair, y free in [0,1]: a vertical segment.
  const std::vector<Halfspace> hs = {{Vec{1, 0}, 0.5}, {Vec{-1, 0}, -0.5},
                                     {Vec{0, 1}, 1}, {Vec{0, -1}, 0}};
  const auto p = intersect_halfspaces(2, hs);
  ASSERT_FALSE(p.is_empty());
  EXPECT_EQ(p.affine_dim(), 1u);
  EXPECT_NEAR(p.measure(), 1.0, 1e-6);
  EXPECT_TRUE(p.contains(Vec{0.5, 0.5}, 1e-6));
}

TEST(IntersectHalfspaces, SinglePointIntersection) {
  // x = 1 and y = 2 pinned: a point.
  const std::vector<Halfspace> hs = {{Vec{1, 0}, 1}, {Vec{-1, 0}, -1},
                                     {Vec{0, 1}, 2}, {Vec{0, -1}, -2}};
  const auto p = intersect_halfspaces(2, hs);
  ASSERT_FALSE(p.is_empty());
  EXPECT_EQ(p.affine_dim(), 0u);
  EXPECT_TRUE(approx_eq(p.vertices()[0], Vec{1, 2}, 1e-6));
}

TEST(IntersectHalfspaces, UnboundedRejected) {
  const std::vector<Halfspace> hs = {{Vec{1, 0}, 1}, {Vec{0, 1}, 1}};
  EXPECT_THROW(intersect_halfspaces(2, hs), ContractViolation);
}

TEST(Intersect, OverlappingSquares) {
  const auto p = intersect({square(0, 2), square(1, 3)});
  ASSERT_FALSE(p.is_empty());
  EXPECT_NEAR(p.volume(), 1.0, 1e-7);  // overlap [1,2]^2
  EXPECT_TRUE(p.contains(Vec{1.5, 1.5}, 1e-7));
  EXPECT_FALSE(p.contains(Vec{0.5, 0.5}, 1e-7));
}

TEST(Intersect, DisjointSquaresEmpty) {
  EXPECT_TRUE(intersect({square(0, 1), square(2, 3)}).is_empty());
}

TEST(Intersect, TouchingSquaresDegenerate) {
  // [0,1]^2 and [1,2]^2 share the single point (1,1).
  const auto p = intersect({square(0, 1), square(1, 2)});
  ASSERT_FALSE(p.is_empty());
  EXPECT_EQ(p.affine_dim(), 0u);
  EXPECT_TRUE(approx_eq(p.vertices()[0], Vec{1, 1}, 1e-5));
}

TEST(Intersect, ThreeWay3d) {
  const auto a = Polytope::box(Vec{0, 0, 0}, Vec{2, 2, 2});
  const auto b = Polytope::box(Vec{1, 0, 0}, Vec{3, 2, 2});
  const auto c = Polytope::box(Vec{0, 1, 1}, Vec{2, 3, 3});
  const auto p = intersect({a, b, c});
  ASSERT_FALSE(p.is_empty());
  EXPECT_NEAR(p.volume(), 1.0, 1e-6);  // [1,2]x[1,2]x[1,2]
}

TEST(Intersect, WithEmptyOperand) {
  EXPECT_TRUE(intersect({square(0, 1), Polytope::empty(2)}).is_empty());
}

TEST(Intersect, LowerDimensionalOperands) {
  // Two crossing segments intersect in a point.
  const auto s1 = Polytope::from_points({Vec{-1, 0}, Vec{1, 0}});
  const auto s2 = Polytope::from_points({Vec{0, -1}, Vec{0, 1}});
  const auto p = intersect({s1, s2});
  ASSERT_FALSE(p.is_empty());
  EXPECT_EQ(p.affine_dim(), 0u);
  EXPECT_TRUE(approx_eq(p.vertices()[0], Vec{0, 0}, 1e-5));
}

TEST(LinearCombination, IntervalArithmetic1d) {
  const auto a = Polytope::from_points({Vec{0.0}, Vec{2.0}});
  const auto b = Polytope::from_points({Vec{10.0}, Vec{14.0}});
  const auto l = linear_combination({a, b}, {0.5, 0.5});
  const auto [lo, hi] = l.bounding_box();
  EXPECT_NEAR(lo[0], 5.0, 1e-9);
  EXPECT_NEAR(hi[0], 8.0, 1e-9);
}

TEST(LinearCombination, EqualWeightsSquares) {
  // L of [0,2]^2 and [10,12]^2 with weights 1/2: [5,7]^2.
  const auto l = equal_weight_combination({square(0, 2), square(10, 12)});
  EXPECT_NEAR(l.volume(), 4.0, 1e-7);
  EXPECT_TRUE(l.contains(Vec{5, 5}, 1e-7));
  EXPECT_TRUE(l.contains(Vec{7, 7}, 1e-7));
  EXPECT_FALSE(l.contains(Vec{4.9, 5}, 1e-7));
}

TEST(LinearCombination, DefinitionPointwise) {
  // Every point of L must decompose as sum c_i p_i with p_i in h_i
  // (Definition 2). Spot-check via support functions: the support of L in
  // any direction is the weighted sum of supports.
  Rng rng(61);
  std::vector<Polytope> polys;
  for (int k = 0; k < 3; ++k) {
    std::vector<Vec> pts;
    for (int i = 0; i < 7; ++i) {
      pts.push_back(Vec{rng.uniform(-1, 1), rng.uniform(-1, 1)});
    }
    polys.push_back(Polytope::from_points(pts));
  }
  const std::vector<double> w = {0.2, 0.5, 0.3};
  const auto l = linear_combination(polys, w);
  for (int t = 0; t < 24; ++t) {
    const double ang = t * 0.2617993877991494;  // pi/12 steps
    const Vec dir{std::cos(ang), std::sin(ang)};
    double expect = 0.0;
    for (std::size_t i = 0; i < polys.size(); ++i) {
      expect += w[i] * dir.dot(polys[i].support(dir));
    }
    EXPECT_NEAR(dir.dot(l.support(dir)), expect, 1e-7);
  }
}

TEST(LinearCombination, SingletonWeightRecoversOperand) {
  const auto a = square(1, 3);
  const auto b = square(-5, -4);
  const auto l = linear_combination({a, b}, {1.0, 0.0});
  EXPECT_TRUE(approx_equal(l, a, 1e-7));
}

TEST(LinearCombination, DegenerateOperands) {
  // A point and a square: pure translation by the weighted point.
  const auto pt = Polytope::from_points({Vec{10, 10}});
  const auto l = linear_combination({square(0, 2), pt}, {0.5, 0.5});
  EXPECT_TRUE(approx_equal(l, square(5, 6), 1e-7));

  // A segment and a segment (parallel): still a segment.
  const auto s1 = Polytope::from_points({Vec{0, 0}, Vec{1, 0}});
  const auto s2 = Polytope::from_points({Vec{0, 0}, Vec{3, 0}});
  const auto l2 = linear_combination({s1, s2}, {0.5, 0.5});
  EXPECT_EQ(l2.affine_dim(), 1u);
  EXPECT_NEAR(l2.measure(), 2.0, 1e-9);
}

TEST(LinearCombination, CrossSegmentsGiveSquare) {
  // Horizontal + vertical segments: L with weights (1/2,1/2) is a square.
  const auto s1 = Polytope::from_points({Vec{-1, 0}, Vec{1, 0}});
  const auto s2 = Polytope::from_points({Vec{0, -1}, Vec{0, 1}});
  const auto l = equal_weight_combination({s1, s2});
  EXPECT_EQ(l.affine_dim(), 2u);
  EXPECT_NEAR(l.volume(), 1.0, 1e-9);
}

TEST(LinearCombination, ThreeDimensional) {
  const auto a = Polytope::box(Vec{0, 0, 0}, Vec{2, 2, 2});
  const auto b = Polytope::box(Vec{4, 4, 4}, Vec{6, 6, 6});
  const auto l = equal_weight_combination({a, b});
  EXPECT_NEAR(l.volume(), 8.0, 1e-6);
  EXPECT_TRUE(l.contains(Vec{3, 3, 3}, 1e-7));
}

TEST(LinearCombination, InvalidWeightsRejected) {
  const auto a = square(0, 1);
  EXPECT_THROW(linear_combination({a, a}, {0.7, 0.7}), ContractViolation);
  EXPECT_THROW(linear_combination({a, a}, {-0.5, 1.5}), ContractViolation);
  EXPECT_THROW(linear_combination({a, a}, std::vector<double>{1.0}),
               ContractViolation);
  EXPECT_THROW(linear_combination({a, Polytope::empty(2)}, {0.5, 0.5}),
               ContractViolation);
}

TEST(Intersect2dClip, MatchesGenericPathOnRandomPolytopes) {
  // Independent-algorithm cross-check: Sutherland–Hodgman clipping vs the
  // LP + polar-duality vertex enumeration, on random overlapping hulls.
  Rng rng(79);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Polytope> polys;
    for (int k = 0; k < 3; ++k) {
      std::vector<Vec> pts;
      const double cx = rng.uniform(-0.3, 0.3);
      const double cy = rng.uniform(-0.3, 0.3);
      for (int i = 0; i < 8; ++i) {
        pts.push_back(Vec{cx + rng.uniform(-1, 1), cy + rng.uniform(-1, 1)});
      }
      polys.push_back(Polytope::from_points(pts));
    }
    const Polytope generic = intersect(polys);
    const Polytope clip = intersect2d_clip(polys);
    ASSERT_EQ(generic.is_empty(), clip.is_empty()) << "trial " << trial;
    if (!generic.is_empty()) {
      EXPECT_LT(hausdorff(generic, clip), 1e-5) << "trial " << trial;
    }
  }
}

TEST(Intersect2dClip, DisjointAndDegenerate) {
  EXPECT_TRUE(intersect2d_clip({square(0, 1), square(2, 3)}).is_empty());
  // Segment operand.
  const auto seg = Polytope::from_points({Vec{-1, 0.5}, Vec{3, 0.5}});
  const auto got = intersect2d_clip({seg, square(0, 1)});
  ASSERT_FALSE(got.is_empty());
  EXPECT_EQ(got.affine_dim(), 1u);
  EXPECT_NEAR(got.measure(), 1.0, 1e-9);
  // Empty operand.
  EXPECT_TRUE(intersect2d_clip({square(0, 1), Polytope::empty(2)}).is_empty());
}

TEST(Intersect2dClip, RejectsNon2d) {
  const auto cube = Polytope::box(Vec{0, 0, 0}, Vec{1, 1, 1});
  EXPECT_THROW(intersect2d_clip({cube}), ContractViolation);
}

TEST(SubsetHulls, OneDimensionalOrderStatistics) {
  // For points on a line, ∩_{|C|=m-f} H(C) = [x_(f+1), x_(m-f)] (sorted).
  const std::vector<Vec> pts = {Vec{5}, Vec{1}, Vec{9}, Vec{3}, Vec{7},
                                Vec{2}, Vec{8}};
  // sorted: 1 2 3 5 7 8 9; f=2 -> [3, 7].
  const auto p = intersection_of_subset_hulls(pts, 2);
  ASSERT_FALSE(p.is_empty());
  const auto [lo, hi] = p.bounding_box();
  EXPECT_NEAR(lo[0], 3.0, 1e-7);
  EXPECT_NEAR(hi[0], 7.0, 1e-7);
}

TEST(SubsetHulls, DropZeroIsPlainHull) {
  const std::vector<Vec> pts = {Vec{0, 0}, Vec{1, 0}, Vec{0, 1}};
  const auto p = intersection_of_subset_hulls(pts, 0);
  EXPECT_EQ(p.vertices().size(), 3u);
}

TEST(SubsetHulls, TverbergGuaranteeInPlane) {
  // (d+1)f + 1 = 7 points with d=2, f=2: non-empty by Tverberg/Lemma 2.
  Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec> pts;
    for (int i = 0; i < 7; ++i) {
      pts.push_back(Vec{rng.uniform(0, 1), rng.uniform(0, 1)});
    }
    const auto p = intersection_of_subset_hulls(pts, 2);
    EXPECT_FALSE(p.is_empty()) << "trial " << trial;
  }
}

TEST(SubsetHulls, CanBeEmptyBelowTverbergBound) {
  // 4 spread-out points in the plane with f=2 (< (d+1)f+1 = 7): subsets of
  // size 2 are disjoint segments; intersection should be empty.
  const std::vector<Vec> pts = {Vec{0, 0}, Vec{10, 0}, Vec{0, 10}, Vec{10, 10}};
  const auto p = intersection_of_subset_hulls(pts, 2);
  EXPECT_TRUE(p.is_empty());
}

TEST(SubsetHulls, ResultContainedInPlainHull) {
  Rng rng(71);
  std::vector<Vec> pts;
  for (int i = 0; i < 9; ++i) {
    pts.push_back(Vec{rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  const auto whole = Polytope::from_points(pts);
  const auto core = intersection_of_subset_hulls(pts, 1);
  ASSERT_FALSE(core.is_empty());
  EXPECT_TRUE(whole.contains(core, 1e-6));
}

TEST(SubsetHulls, MonotoneInDrop) {
  // Dropping more points shrinks the intersection.
  Rng rng(73);
  std::vector<Vec> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(Vec{rng.uniform(-1, 1), rng.uniform(-1, 1)});
  }
  const auto f1 = intersection_of_subset_hulls(pts, 1);
  const auto f2 = intersection_of_subset_hulls(pts, 2);
  ASSERT_FALSE(f1.is_empty());
  ASSERT_FALSE(f2.is_empty());
  EXPECT_TRUE(f1.contains(f2, 1e-6));
}

TEST(SubsetHulls, CollinearPointsIn2d) {
  // Degenerate adversarial input: all points on a line in the plane.
  const std::vector<Vec> pts = {Vec{0, 0}, Vec{1, 1}, Vec{2, 2}, Vec{3, 3},
                                Vec{4, 4}, Vec{5, 5}, Vec{6, 6}};
  const auto p = intersection_of_subset_hulls(pts, 2);
  ASSERT_FALSE(p.is_empty());
  EXPECT_EQ(p.affine_dim(), 1u);
  // Order statistics along the line: [x_3, x_5] = [(2,2), (4,4)].
  EXPECT_TRUE(p.contains(Vec{3, 3}, 1e-6));
  EXPECT_TRUE(p.contains(Vec{2, 2}, 1e-5));
  EXPECT_TRUE(p.contains(Vec{4, 4}, 1e-5));
  EXPECT_FALSE(p.contains(Vec{4.5, 4.5}, 1e-5));
}

}  // namespace
}  // namespace chc::geo
