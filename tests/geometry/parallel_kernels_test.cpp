// Differential property tests for the parallel geometry kernel engine
// (DESIGN.md §9): the pooled subset-hull intersection and the k-way /
// merge-tree L must be vertex-set-identical (up to rel_tol) to the serial
// pre-engine reference kernels, and bit-identical across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "geometry/distance.hpp"
#include "geometry/intern.hpp"
#include "geometry/ops.hpp"
#include "geometry/polytope.hpp"

namespace chc::geo {
namespace {

std::vector<Vec> cloud(Rng& rng, std::size_t m, std::size_t d,
                       double lo = -1.0, double hi = 1.0) {
  std::vector<Vec> pts;
  pts.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    Vec p(d);
    for (std::size_t c = 0; c < d; ++c) p[c] = rng.uniform(lo, hi);
    pts.push_back(std::move(p));
  }
  return pts;
}

/// Every vertex of `a` is within `tol` of some vertex of `b` and vice
/// versa — the "vertex-set-identical up to rel_tol" acceptance relation.
void expect_vertex_sets_match(const Polytope& a, const Polytope& b,
                              double tol, const char* what) {
  ASSERT_EQ(a.is_empty(), b.is_empty()) << what;
  auto one_sided = [&](const Polytope& x, const Polytope& y) {
    for (const Vec& v : x.vertices()) {
      bool found = false;
      for (const Vec& w : y.vertices()) {
        if (approx_eq(v, w, tol)) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << what << ": unmatched vertex " << v;
    }
  };
  one_sided(a, b);
  one_sided(b, a);
}

bool bit_identical(const Polytope& a, const Polytope& b) {
  if (a.ambient_dim() != b.ambient_dim()) return false;
  if (a.vertices().size() != b.vertices().size()) return false;
  for (std::size_t i = 0; i < a.vertices().size(); ++i) {
    if (!(a.vertices()[i] == b.vertices()[i])) return false;
  }
  return true;
}

/// Restores the global pool to its environment-configured size on scope
/// exit, so thread-count-twiddling tests cannot leak into each other.
struct PoolGuard {
  ~PoolGuard() { common::ThreadPool::set_global_threads(0); }
};

// ---------------------------------------------------------------------
// ThreadPool basics.
// ---------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SerialPoolRunsInline) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::size_t sum = 0;
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });  // no data race
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, NestedParallelForFallsBackInline) {
  common::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(8, [&](std::size_t i) {
    pool.parallel_for(8, [&](std::size_t j) { hits[8 * i + j].fetch_add(1); });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, PropagatesJobExceptions) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(32,
                                 [&](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Engine vs reference kernels, random clouds, d in {1, 2, 3, 4}.
// ---------------------------------------------------------------------

class KernelDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelDifferential, SubsetHullsMatchReference) {
  const std::size_t d = GetParam();
  Rng rng(7000 + d);
  // m large enough for a non-empty Tverberg core: m >= (d+1)*drop + 1.
  for (const std::size_t drop : {std::size_t{1}, std::size_t{2}}) {
    const std::size_t m = (d + 1) * drop + 3;
    for (int trial = 0; trial < 6; ++trial) {
      auto pts = cloud(rng, m, d);
      if (trial % 2 == 1) pts.push_back(pts.front());  // multiset input
      const Polytope engine = intersection_of_subset_hulls(pts, drop);
      const Polytope ref = intersection_of_subset_hulls_reference(pts, drop);
      expect_vertex_sets_match(engine, ref, 1e-6, "subset hulls");
      if (!engine.is_empty()) EXPECT_LT(hausdorff(engine, ref), 1e-6);
    }
  }
}

TEST_P(KernelDifferential, LinearCombinationMatchesPairwise) {
  const std::size_t d = GetParam();
  Rng rng(8000 + d);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t k = 2 + static_cast<std::size_t>(trial);
    std::vector<Polytope> polys;
    std::vector<double> weights(k, 1.0 / static_cast<double>(k));
    for (std::size_t i = 0; i < k; ++i) {
      // Mix full-dimensional clouds with degenerate (point) operands.
      const std::size_t m = (i % 3 == 2) ? 1 : 5 + d;
      polys.push_back(Polytope::from_points(cloud(rng, m, d)));
    }
    const Polytope engine = linear_combination(polys, weights);
    const Polytope ref = linear_combination_pairwise(polys, weights);
    expect_vertex_sets_match(engine, ref, 1e-6, "linear combination");
    EXPECT_LT(hausdorff(engine, ref), 1e-6) << "d=" << d << " k=" << k;
  }
}

TEST_P(KernelDifferential, UnequalWeightsMatchPairwise) {
  const std::size_t d = GetParam();
  Rng rng(8500 + d);
  std::vector<Polytope> polys;
  std::vector<double> weights;
  double wsum = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    polys.push_back(Polytope::from_points(cloud(rng, 6 + d, d)));
    weights.push_back(rng.uniform(0.1, 1.0));
    wsum += weights.back();
  }
  weights.push_back(0.0);  // a zero-weight operand must be skipped
  polys.push_back(Polytope::from_points(cloud(rng, 4, d)));
  for (double& w : weights) w /= wsum;
  const Polytope engine = linear_combination(polys, weights);
  const Polytope ref = linear_combination_pairwise(polys, weights);
  EXPECT_LT(hausdorff(engine, ref), 1e-6) << "d=" << d;
}

TEST_P(KernelDifferential, BitIdenticalAcrossThreadCounts) {
  const std::size_t d = GetParam();
  PoolGuard guard;
  Rng rng(9000 + d);
  const std::size_t drop = 1;
  const auto pts = cloud(rng, (d + 1) * drop + 4, d);
  std::vector<Polytope> polys;
  for (std::size_t i = 0; i < 6; ++i) {
    polys.push_back(Polytope::from_points(cloud(rng, 5 + d, d)));
  }

  common::ThreadPool::set_global_threads(1);  // CHC_GEO_THREADS=1 semantics
  const Polytope subset1 = intersection_of_subset_hulls(pts, drop);
  const Polytope combo1 = equal_weight_combination(polys);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    common::ThreadPool::set_global_threads(threads);
    const Polytope subset_t = intersection_of_subset_hulls(pts, drop);
    const Polytope combo_t = equal_weight_combination(polys);
    EXPECT_TRUE(bit_identical(subset1, subset_t))
        << "subset hulls diverge at threads=" << threads << " d=" << d;
    EXPECT_TRUE(bit_identical(combo1, combo_t))
        << "L diverges at threads=" << threads << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------
// Interning and the memoized round combination.
// ---------------------------------------------------------------------

TEST(Intern, SameValueYieldsSameHandle) {
  clear_intern_caches();
  Rng rng(10100);
  const auto pts = cloud(rng, 8, 2);
  PolytopeHandle a = intern(Polytope::from_points(pts));
  PolytopeHandle b = intern(Polytope::from_points(pts));
  EXPECT_EQ(a.get(), b.get());
  const InternStats s = intern_stats();
  EXPECT_EQ(s.intern_misses, 1u);
  EXPECT_EQ(s.intern_hits, 1u);
}

TEST(Intern, DistinctValuesYieldDistinctHandles) {
  clear_intern_caches();
  PolytopeHandle a = intern(Polytope::from_points({Vec{0.0, 0.0}}));
  PolytopeHandle b = intern(Polytope::from_points({Vec{1.0, 0.0}}));
  EXPECT_NE(a.get(), b.get());
}

TEST(Intern, CombinationMemoizedAcrossOperandOrder) {
  clear_intern_caches();
  Rng rng(10200);
  std::vector<PolytopeHandle> ops;
  for (int i = 0; i < 3; ++i) {
    ops.push_back(intern(Polytope::from_points(cloud(rng, 6, 2))));
  }
  PolytopeHandle r1 = equal_weight_combination_interned(ops);
  std::vector<PolytopeHandle> reversed(ops.rbegin(), ops.rend());
  PolytopeHandle r2 = equal_weight_combination_interned(reversed);
  EXPECT_EQ(r1.get(), r2.get()) << "memo must be order-insensitive";
  const InternStats s = intern_stats();
  EXPECT_EQ(s.combo_misses, 1u);
  EXPECT_EQ(s.combo_hits, 1u);

  // And the memoized value is the actual combination.
  std::vector<Polytope> concrete;
  for (const auto& h : ops) concrete.push_back(*h);
  EXPECT_LT(hausdorff(*r1, equal_weight_combination(concrete)), 1e-12);
}

TEST(Intern, TableDoesNotKeepPolytopesAlive) {
  clear_intern_caches();
  const Polytope p = Polytope::from_points({Vec{2.0, 3.0}});
  {
    PolytopeHandle h = intern(p);
    EXPECT_EQ(intern(p).get(), h.get());
  }
  // Handle dropped: the weak table entry expired, so re-interning builds a
  // fresh object (a miss, not a hit on a dangling pointer).
  const InternStats before = intern_stats();
  PolytopeHandle again = intern(p);
  const InternStats after = intern_stats();
  EXPECT_EQ(after.intern_misses, before.intern_misses + 1);
}

}  // namespace
}  // namespace chc::geo
