#include "geometry/vec.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace chc::geo {
namespace {

TEST(Vec, ConstructionAndAccess) {
  Vec a(3, 1.5);
  EXPECT_EQ(a.dim(), 3u);
  EXPECT_DOUBLE_EQ(a[2], 1.5);
  Vec b{1.0, 2.0};
  EXPECT_EQ(b.dim(), 2u);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
}

TEST(Vec, Arithmetic) {
  Vec a{1, 2}, b{3, -1};
  EXPECT_TRUE(approx_eq(a + b, Vec{4, 1}, 1e-15));
  EXPECT_TRUE(approx_eq(a - b, Vec{-2, 3}, 1e-15));
  EXPECT_TRUE(approx_eq(a * 2.0, Vec{2, 4}, 1e-15));
  EXPECT_TRUE(approx_eq(2.0 * a, Vec{2, 4}, 1e-15));
}

TEST(Vec, DotNormDistance) {
  Vec a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.dot(Vec{1, 1}), 7.0);
  EXPECT_DOUBLE_EQ(a.dist(Vec{0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(a.dist2(Vec{3, 0}), 16.0);
}

TEST(Vec, DimensionMismatchRejected) {
  Vec a{1, 2}, b{1, 2, 3};
  EXPECT_THROW(a.dot(b), ContractViolation);
  EXPECT_THROW(a += b, ContractViolation);
  EXPECT_THROW(a.dist(b), ContractViolation);
}

TEST(Vec, MaxAbs) {
  EXPECT_DOUBLE_EQ((Vec{-5, 2, 3}).max_abs(), 5.0);
  EXPECT_DOUBLE_EQ(Vec(2, 0.0).max_abs(), 0.0);
}

TEST(Vec, ApproxEq) {
  EXPECT_TRUE(approx_eq(Vec{1, 2}, Vec{1.0 + 1e-12, 2.0}, 1e-9));
  EXPECT_FALSE(approx_eq(Vec{1, 2}, Vec{1.1, 2.0}, 1e-9));
  EXPECT_FALSE(approx_eq(Vec{1, 2}, Vec{1, 2, 3}, 1e-9));
}

TEST(Vec, Cross2Orientation) {
  const Vec a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_GT(cross2(a, b, c), 0.0);   // CCW
  EXPECT_LT(cross2(a, c, b), 0.0);   // CW
  EXPECT_DOUBLE_EQ(cross2(a, b, Vec{2, 0}), 0.0);  // collinear
}

TEST(Vec, StreamOutput) {
  std::ostringstream os;
  os << Vec{1.5, -2};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace chc::geo
