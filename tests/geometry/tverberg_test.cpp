#include "geometry/tverberg.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/polytope.hpp"

namespace chc::geo {
namespace {

TEST(CommonHullPoint, SingleGroupGivesAnyHullPoint) {
  const auto w = common_hull_point({{Vec{0, 0}, Vec{1, 0}, Vec{0, 1}}});
  ASSERT_TRUE(w.has_value());
  const auto tri = Polytope::from_points({Vec{0, 0}, Vec{1, 0}, Vec{0, 1}});
  EXPECT_TRUE(tri.contains(*w, 1e-6));
}

TEST(CommonHullPoint, DisjointGroupsInfeasible) {
  const auto w = common_hull_point(
      {{Vec{0, 0}, Vec{1, 0}}, {Vec{5, 5}, Vec{6, 5}}});
  EXPECT_FALSE(w.has_value());
}

TEST(CommonHullPoint, CrossingSegments) {
  const auto w = common_hull_point(
      {{Vec{-1, 0}, Vec{1, 0}}, {Vec{0, -1}, Vec{0, 1}}});
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(approx_eq(*w, Vec{0, 0}, 1e-6));
}

TEST(Tverberg, RadonPartitionOfFourPlanePoints) {
  // Radon's theorem: any 4 points in the plane split into 2 parts with
  // intersecting hulls.
  const std::vector<Vec> pts = {Vec{0, 0}, Vec{2, 0}, Vec{1, 2}, Vec{1, 0.5}};
  const auto part = tverberg_partition(pts, 2);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->parts.size(), 2u);
  // Witness must be in both part hulls.
  for (const auto& idx : part->parts) {
    std::vector<Vec> group;
    for (auto i : idx) group.push_back(pts[i]);
    EXPECT_TRUE(Polytope::from_points(group).contains(part->witness, 1e-5));
  }
}

TEST(Tverberg, SevenPlanePointsThreeParts) {
  // Tverberg bound for d=2, r=3: (d+1)(r-1)+1 = 7 points always suffice.
  Rng rng(91);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Vec> pts;
    for (int i = 0; i < 7; ++i) {
      pts.push_back(Vec{rng.uniform(0, 1), rng.uniform(0, 1)});
    }
    const auto part = tverberg_partition(pts, 3);
    ASSERT_TRUE(part.has_value()) << "trial " << trial;
    std::size_t total = 0;
    for (const auto& p : part->parts) {
      EXPECT_FALSE(p.empty());
      total += p.size();
    }
    EXPECT_EQ(total, 7u);
  }
}

TEST(Tverberg, GenericTriangleHasNoTwoPartition) {
  // 3 points in general position, 2 parts: the singleton never lies in the
  // opposite segment, so no Tverberg partition exists (3 < (d+1)(r-1)+1=4).
  const std::vector<Vec> pts = {Vec{0, 0}, Vec{1, 0}, Vec{0, 1}};
  EXPECT_FALSE(tverberg_partition(pts, 2).has_value());
}

TEST(Tverberg, MultisetDuplicatesArePartitionable) {
  // Duplicate points make it trivial: {p},{p}.
  const std::vector<Vec> pts = {Vec{1, 1}, Vec{1, 1}};
  const auto part = tverberg_partition(pts, 2);
  ASSERT_TRUE(part.has_value());
  EXPECT_TRUE(approx_eq(part->witness, Vec{1, 1}, 1e-6));
}

TEST(Tverberg, OneDimensionalMedian) {
  // 5 collinear points, 3 parts ((d+1)(r-1)+1 = 5): witness near median.
  const std::vector<Vec> pts = {Vec{1}, Vec{2}, Vec{3}, Vec{4}, Vec{5}};
  const auto part = tverberg_partition(pts, 3);
  ASSERT_TRUE(part.has_value());
  EXPECT_GE(part->witness[0], 1.0 - 1e-9);
  EXPECT_LE(part->witness[0], 5.0 + 1e-9);
}

}  // namespace
}  // namespace chc::geo
