// Scenario DSL tests: lowering partitions/crash-recover/storms onto the
// harness knobs, and validation of malformed scenarios.
#include "nemesis/scenario.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/check.hpp"

namespace chc::nemesis {
namespace {

TEST(Scenario, EmptyScenarioCompilesToNothing) {
  const Scenario::Compiled c = Scenario{}.compile(5);
  EXPECT_TRUE(c.schedule.empty());
  EXPECT_TRUE(c.storms.empty());
  EXPECT_EQ(c.crashes.planned_crashes(), 0u);
  EXPECT_FALSE(c.policy.enabled());
}

TEST(Scenario, SymmetricPartitionCutsBothDirectionsAndHeals) {
  Scenario s;
  s.partition(4.0, 30.0, {0, 1});
  const Scenario::Compiled c = s.compile(5);
  ASSERT_FALSE(c.schedule.empty());
  // Phases at 0 (clean), 4 (cut), 30 (healed).
  ASSERT_EQ(c.schedule.phases().size(), 3u);
  const net::NetworkPolicy& before = c.schedule.active(0.0);
  const net::NetworkPolicy& during = c.schedule.active(10.0);
  const net::NetworkPolicy& after = c.schedule.active(30.0);
  EXPECT_FALSE(before.enabled());
  EXPECT_FALSE(after.enabled());
  // Every cross link is severed, both ways; intra-side links are clean.
  for (const sim::ProcessId a : {0u, 1u}) {
    for (const sim::ProcessId b : {2u, 3u, 4u}) {
      EXPECT_EQ(during.for_channel(a, b).drop_rate, 1.0);
      EXPECT_EQ(during.for_channel(b, a).drop_rate, 1.0);
    }
  }
  EXPECT_EQ(during.for_channel(0, 1).drop_rate, 0.0);
  EXPECT_EQ(during.for_channel(2, 3).drop_rate, 0.0);
}

TEST(Scenario, OneWayPartitionIsAsymmetric) {
  Scenario s;
  s.partition_one_way(3.0, 25.0, {0}, {1, 2});
  const Scenario::Compiled c = s.compile(5);
  const net::NetworkPolicy& during = c.schedule.active(10.0);
  EXPECT_EQ(during.for_channel(0, 1).drop_rate, 1.0);
  EXPECT_EQ(during.for_channel(0, 2).drop_rate, 1.0);
  EXPECT_EQ(during.for_channel(1, 0).drop_rate, 0.0);  // inbound survives
  EXPECT_EQ(during.for_channel(2, 0).drop_rate, 0.0);
  EXPECT_EQ(during.for_channel(0, 3).drop_rate, 0.0);  // uncut target
}

TEST(Scenario, PartitionKeepsBaseClassFaults) {
  Scenario s;
  s.base_policy(net::NetworkPolicy::lossy(0.1, 0.05, 0.02));
  s.partition(2.0, 9.0, {0});
  const Scenario::Compiled c = s.compile(3);
  const net::NetworkPolicy& during = c.schedule.active(5.0);
  EXPECT_EQ(during.link.drop_rate, 0.1);  // uncut links keep the base class
  const net::ChannelPolicy& cut = during.for_channel(0, 1);
  EXPECT_EQ(cut.drop_rate, 1.0);
  EXPECT_EQ(cut.dup_rate, 0.05);  // severed link keeps dup/reorder behavior
  EXPECT_EQ(cut.reorder_rate, 0.02);
}

TEST(Scenario, UnhealedPartitionHasNoHealPhase) {
  Scenario s;
  s.partition(4.0, std::numeric_limits<double>::infinity(), {0});
  const Scenario::Compiled c = s.compile(3);
  ASSERT_EQ(c.schedule.phases().size(), 2u);  // clean, cut — no heal
  EXPECT_EQ(c.schedule.active(1e12).for_channel(0, 1).drop_rate, 1.0);
}

TEST(Scenario, OverlappingPartitionsUnionTheirCuts) {
  Scenario s;
  s.partition(2.0, 10.0, {0});
  s.partition_one_way(5.0, 8.0, {1}, {2});
  const Scenario::Compiled c = s.compile(3);
  const net::NetworkPolicy& both = c.schedule.active(6.0);
  EXPECT_EQ(both.for_channel(0, 2).drop_rate, 1.0);
  EXPECT_EQ(both.for_channel(1, 2).drop_rate, 1.0);
  const net::NetworkPolicy& first_only = c.schedule.active(9.0);
  EXPECT_EQ(first_only.for_channel(0, 2).drop_rate, 1.0);
  EXPECT_EQ(first_only.for_channel(1, 2).drop_rate, 0.0);
}

TEST(Scenario, CrashRecoverLowersToCrashPlan) {
  Scenario s;
  s.crash(2, 6.0).recover(2, 25.0);
  s.crash_after(0, 7);
  const Scenario::Compiled c = s.compile(5);
  EXPECT_EQ(c.crashes.planned_crashes(), 2u);
  EXPECT_TRUE(c.crashes.any_recovery());
  const sim::CrashPlan* p2 = c.crashes.plan_for(2);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->at_time, 6.0);
  EXPECT_EQ(p2->recover_at, 25.0);
  const sim::CrashPlan* p0 = c.crashes.plan_for(0);
  ASSERT_NE(p0, nullptr);
  EXPECT_EQ(p0->after_sends, 7u);
  EXPECT_FALSE(p0->recover_at.has_value());
}

TEST(Scenario, StormsPassThrough) {
  Scenario s;
  s.delay_storm(2.0, 20.0, 12.0).delay_storm(5.0, 8.0, 2.0);
  const Scenario::Compiled c = s.compile(4);
  ASSERT_EQ(c.storms.size(), 2u);
  EXPECT_EQ(c.storms[0].factor, 12.0);
}

TEST(Scenario, MalformedStepsRejected) {
  EXPECT_THROW(Scenario{}.partition(5.0, 5.0, {0}), ContractViolation);
  EXPECT_THROW(Scenario{}.partition(0.0, 1.0, {}), ContractViolation);
  EXPECT_THROW(Scenario{}.recover(1, 10.0), ContractViolation);
  {
    Scenario s;
    s.crash_after(1, 3);
    // recover() needs a time-triggered crash, not a send-count trigger.
    EXPECT_THROW(s.recover(1, 10.0), ContractViolation);
  }
  {
    Scenario s;
    s.crash(1, 6.0);
    EXPECT_THROW(s.recover(1, 6.0), ContractViolation);  // not after
    EXPECT_THROW(s.crash(1, 8.0), ContractViolation);    // one plan per p
  }
  EXPECT_THROW(Scenario{}.delay_storm(1.0, 5.0, 0.5), ContractViolation);
  {
    Scenario s;
    s.partition(0.0, 5.0, {7});
    EXPECT_THROW(s.compile(3), ContractViolation);  // pid out of range
  }
  {
    Scenario s;
    s.crash(9, 1.0);
    EXPECT_THROW(s.compile(3), ContractViolation);
  }
}

}  // namespace
}  // namespace chc::nemesis
