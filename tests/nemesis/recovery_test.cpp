// Crash->recover determinism (satellite): the same seed + scenario replays
// bit-identically through core/replay, and the recovered incarnation never
// violates stable-vector containment (the offline checker re-verifies every
// run, all incarnations included).
#include <gtest/gtest.h>

#include "core/replay.hpp"
#include "nemesis/presets.hpp"

namespace chc::nemesis {
namespace {

ScenarioResult run_crash_recover(std::uint64_t seed) {
  const Preset* p = find_preset("crash_recover");
  EXPECT_NE(p, nullptr);
  return run_preset(*p, seed);
}

TEST(Recovery, SameSeedSameTraceBytes) {
  const ScenarioResult a = run_crash_recover(5);
  const ScenarioResult b = run_crash_recover(5);
  ASSERT_FALSE(a.trace_lines.empty());
  EXPECT_EQ(a.trace_lines, b.trace_lines);

  const ScenarioResult c = run_crash_recover(6);
  EXPECT_NE(a.trace_lines, c.trace_lines);  // the seed actually matters
}

TEST(Recovery, ReplaysBitIdenticallyFromHeader) {
  // The trace header carries the scenario's lowered form (policy phases,
  // crash plans with recover_at, storms); core/replay rebuilds the config
  // from the header alone and must reproduce the run byte for byte —
  // including the crash, the restart and the fresh incarnation's messages.
  const ScenarioResult r = run_crash_recover(5);
  ASSERT_TRUE(r.passed) << summarize(r);
  ASSERT_GE(r.recoveries, 1u);
  const core::ReplayResult rep = core::replay_trace_lines(r.trace_lines);
  ASSERT_TRUE(rep.ran) << rep.error;
  EXPECT_TRUE(rep.identical)
      << "first diff at line " << rep.first_diff_line << "\n  expected: "
      << rep.expected << "\n  actual:   " << rep.actual;
  EXPECT_EQ(rep.original_lines, r.trace_lines.size());
}

TEST(Recovery, RecoveredIncarnationStaysContained) {
  // Across several seeds: every crash_recover run is checker-clean, which
  // in particular verifies stable-vector containment for the recovered
  // incarnation's fresh round-0 state (the checker tracks incarnations
  // separately and applies safety to all of them).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ScenarioResult r = run_crash_recover(seed);
    EXPECT_TRUE(r.check.ok()) << "seed=" << seed << ": " << summarize(r);
    EXPECT_EQ(r.check.recoveries, 1u) << "seed=" << seed;
    EXPECT_EQ(r.outcome, Outcome::kDecided)
        << "seed=" << seed << ": " << summarize(r);
  }
}

TEST(Recovery, PartitionedRecoveryReplaysToo) {
  // The composed preset (partition x crash-recover) exercises scheduled
  // policy phases AND crash plans in one header.
  const Preset* p = find_preset("partition_crash_recover");
  ASSERT_NE(p, nullptr);
  const ScenarioResult r = run_preset(*p, 9);
  ASSERT_TRUE(r.passed) << summarize(r);
  const core::ReplayResult rep = core::replay_trace_lines(r.trace_lines);
  ASSERT_TRUE(rep.ran) << rep.error;
  EXPECT_TRUE(rep.identical)
      << "first diff at line " << rep.first_diff_line << "\n  expected: "
      << rep.expected << "\n  actual:   " << rep.actual;
}

}  // namespace
}  // namespace chc::nemesis
