// Byzantine steps in the nemesis DSL: scenario validation, routing onto
// the BCC harness, and the two byz_* presets.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "nemesis/presets.hpp"
#include "nemesis/runner.hpp"
#include "nemesis/scenario.hpp"

namespace chc::nemesis {
namespace {

TEST(ByzScenario, CompileCarriesBehaviorAssignments) {
  Scenario s;
  s.byzantine(1, {bcc::BehaviorKind::kEquivocate, 3});
  s.byzantine(2, {bcc::BehaviorKind::kSilent, 0});
  const Scenario::Compiled c = s.compile(5);
  ASSERT_EQ(c.byz.size(), 2u);
  EXPECT_EQ(c.byz.at(1).kind, bcc::BehaviorKind::kEquivocate);
  EXPECT_EQ(c.byz.at(1).param, 3u);
  EXPECT_EQ(c.byz.at(2).kind, bcc::BehaviorKind::kSilent);
}

TEST(ByzScenario, RejectsConflictingSteps) {
  // One behavior per process.
  Scenario twice;
  twice.byzantine(1, {bcc::BehaviorKind::kSilent, 0});
  EXPECT_THROW(twice.byzantine(1, {bcc::BehaviorKind::kEquivocate, 0}),
               ContractViolation);
  // Byzantine and crashed are different fault models — a process that
  // should go dark is kSilent, not crash(p).
  Scenario both;
  both.byzantine(1, {bcc::BehaviorKind::kSilent, 0});
  EXPECT_THROW(both.crash(1, 5.0), ContractViolation);
  // Out-of-range pid surfaces at compile time.
  Scenario oob;
  oob.byzantine(9, {bcc::BehaviorKind::kSilent, 0});
  EXPECT_THROW(oob.compile(4), ContractViolation);
}

TEST(ByzScenario, ScenarioRunRoutesOntoBccHarness) {
  ScenarioSpec spec;
  spec.name = "byz_route";
  spec.cc = core::CCConfig{.n = 4, .f = 1, .d = 1, .eps = 0.15};
  spec.seed = 13;
  spec.crash_count = 1;
  spec.expect_decide = true;
  // The builder below is what presets do: target the workload's faulty
  // pid. ScenarioSpec carries a ready-built scenario, so resolve the
  // faulty pid the same way run_preset does — via the workload.
  const core::Workload w = core::make_workload(
      spec.cc.n, spec.cc.f, spec.cc.d, spec.pattern, spec.seed, true);
  ASSERT_EQ(w.faulty.size(), 1u);
  spec.scenario.byzantine(w.faulty[0],
                          {bcc::BehaviorKind::kForgePoint, 2});
  const ScenarioResult r = run_scenario(spec);
  EXPECT_TRUE(r.passed) << outcome_name(r.outcome);
  EXPECT_EQ(r.decided, 3u);
  // The trace must identify itself as a Byzantine run.
  ASSERT_FALSE(r.trace_lines.empty());
  EXPECT_NE(r.trace_lines[0].find("\"protocol\":\"bcc\""),
            std::string::npos)
      << r.trace_lines[0];
}

TEST(ByzScenario, ByzPresetsPass) {
  for (const char* name : {"byz_equivocator", "byz_silent_partition"}) {
    const Preset* p = find_preset(name);
    ASSERT_NE(p, nullptr) << name;
    const ScenarioResult r = run_preset(*p, 3);
    EXPECT_TRUE(r.passed)
        << name << ": outcome=" << outcome_name(r.outcome)
        << " decided=" << r.decided;
  }
}

}  // namespace
}  // namespace chc::nemesis
