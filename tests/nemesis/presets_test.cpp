// Preset matrix tests: every named scenario runs checker-clean and meets
// its decide expectation; the over-budget preset stalls safe.
#include "nemesis/presets.hpp"

#include <gtest/gtest.h>

#include <set>

#include "obs/metrics.hpp"

namespace chc::nemesis {
namespace {

TEST(Presets, MatrixIsStable) {
  const auto& all = presets();
  ASSERT_GE(all.size(), 7u);
  std::set<std::string> names;
  for (const Preset& p : all) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
    EXPECT_FALSE(p.description.empty()) << p.name;
    EXPECT_LE(p.crash_count, p.f) << p.name;
    // Resilience: the paper needs n >= (d+2)f + 1.
    EXPECT_GE(p.n, (p.d + 2) * p.f + 1) << p.name;
  }
  EXPECT_NE(find_preset("partition_heal"), nullptr);
  EXPECT_NE(find_preset("over_budget"), nullptr);
  EXPECT_EQ(find_preset("no_such_preset"), nullptr);
}

TEST(Presets, EveryPresetPassesAtMultipleSeeds) {
  for (const Preset& p : presets()) {
    for (const std::uint64_t seed : {3ull, 11ull}) {
      const ScenarioResult r = run_preset(p, seed);
      EXPECT_TRUE(r.check.ok())
          << p.name << " seed=" << seed << ": " << summarize(r);
      EXPECT_TRUE(r.passed)
          << p.name << " seed=" << seed << ": " << summarize(r);
      EXPECT_FALSE(r.trace_lines.empty()) << p.name;
    }
  }
}

TEST(Presets, OverBudgetStallsSafeNotUnsafe) {
  const Preset* p = find_preset("over_budget");
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->expect_decide);
  const ScenarioResult r = run_preset(*p, 3);
  EXPECT_EQ(r.outcome, Outcome::kStalledSafe) << summarize(r);
  EXPECT_TRUE(r.check.ok()) << summarize(r);
  EXPECT_TRUE(r.check.over_budget);  // checker saw > f crashes
  EXPECT_EQ(r.decided, 0u);
}

TEST(Presets, CrashRecoverActuallyRecovers) {
  const Preset* p = find_preset("crash_recover");
  ASSERT_NE(p, nullptr);
  const ScenarioResult r = run_preset(*p, 3);
  EXPECT_TRUE(r.passed) << summarize(r);
  EXPECT_EQ(r.recoveries, 1u);
  EXPECT_EQ(r.check.recoveries, 1u);  // offline checker agrees
  EXPECT_GE(r.channel_resets, 1u);    // epoch protocol kicked in
}

TEST(Presets, RunFeedsMetricsRegistry) {
  obs::Registry reg;
  const Preset* p = find_preset("partition_heal");
  ASSERT_NE(p, nullptr);
  const ScenarioResult r = run_preset(*p, 3, &reg);
  ASSERT_TRUE(r.passed) << summarize(r);
  EXPECT_EQ(reg.counter("nemesis.runs").value(), 1u);
  EXPECT_EQ(reg.counter("nemesis.decided_runs").value(), 1u);
  EXPECT_EQ(reg.counter("nemesis.violations").value(), 0u);
  EXPECT_GT(reg.gauge("nemesis.decide_latency").value(), 0.0);
  // The run's own counters flow through the same registry.
  EXPECT_GT(reg.counter("net.rel.data_sent").value(), 0u);
}

}  // namespace
}  // namespace chc::nemesis
