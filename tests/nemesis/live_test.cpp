// Live nemesis lowering: the new scenario steps (flapping / rolling /
// pause / clock_skew) and compile_live(), which splits a Scenario into the
// schedule, process actions and clock skews the real-cluster orchestrator
// executes.
#include "nemesis/live.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.hpp"
#include "nemesis/scenario.hpp"

namespace chc::nemesis {
namespace {

using Kind = LiveAction::Kind;

/// Drop rate of the directed channel from->to at model time t.
double drop_at(const net::PolicySchedule& sched, double t,
               sim::ProcessId from, sim::ProcessId to) {
  return sched.active(t).for_channel(from, to).drop_rate;
}

TEST(ScenarioLive, FlappingPartitionExpandsToAlternatingPhases) {
  // [0, 64) with period 16: cut during [0,8) [16,24) [32,40) [48,56),
  // healed in between and after.
  const Scenario s =
      Scenario{}.partition_flapping(0.0, 64.0, 16.0, {0, 1});
  const auto c = s.compile(5);
  ASSERT_FALSE(c.schedule.empty());
  for (const double t : {0.0, 4.0, 17.0, 33.0, 49.0}) {
    EXPECT_EQ(drop_at(c.schedule, t, 0, 2), 1.0) << "t=" << t;
    EXPECT_EQ(drop_at(c.schedule, t, 2, 1), 1.0) << "t=" << t;
  }
  for (const double t : {8.0, 12.0, 25.0, 47.0, 56.0, 99.0}) {
    EXPECT_EQ(drop_at(c.schedule, t, 0, 2), 0.0) << "t=" << t;
    EXPECT_EQ(drop_at(c.schedule, t, 2, 1), 0.0) << "t=" << t;
  }
  // Links inside the cut set stay clean throughout.
  EXPECT_EQ(drop_at(c.schedule, 4.0, 0, 1), 0.0);
}

TEST(ScenarioLive, RollingPartitionIsolatesEachNodeRoundRobin) {
  const Scenario s = Scenario{}.partition_rolling(0.0, 60.0, 12.0);
  const auto c = s.compile(5);
  for (std::size_t w = 0; w < 5; ++w) {
    const double t = 12.0 * static_cast<double>(w) + 6.0;
    const auto victim = static_cast<sim::ProcessId>(w);
    for (sim::ProcessId p = 0; p < 5; ++p) {
      if (p == victim) continue;
      EXPECT_EQ(drop_at(c.schedule, t, victim, p), 1.0)
          << "window " << w << " victim outbound";
      EXPECT_EQ(drop_at(c.schedule, t, p, victim), 1.0)
          << "window " << w << " victim inbound";
      for (sim::ProcessId q = 0; q < 5; ++q) {
        if (q == victim || q == p) continue;
        EXPECT_EQ(drop_at(c.schedule, t, p, q), 0.0)
            << "window " << w << " bystander link";
      }
    }
  }
  EXPECT_EQ(drop_at(c.schedule, 61.0, 0, 1), 0.0);  // all healed at t1
}

TEST(ScenarioLive, PauseFoldsToCutForSimButStaysFirstClassForLive) {
  const Scenario s = Scenario{}.pause(2, 4.0, 48.0);
  const auto sim = s.compile(5, Scenario::Target::kSim);
  // kSim: the freeze is approximated as a symmetric cut of {2}.
  EXPECT_TRUE(sim.pauses.empty());
  EXPECT_EQ(drop_at(sim.schedule, 10.0, 2, 0), 1.0);
  EXPECT_EQ(drop_at(sim.schedule, 10.0, 0, 2), 1.0);
  EXPECT_EQ(drop_at(sim.schedule, 50.0, 2, 0), 0.0);

  const auto live = s.compile(5, Scenario::Target::kLive);
  // kLive: no cut — the orchestrator SIGSTOPs the real process instead.
  ASSERT_EQ(live.pauses.size(), 1u);
  EXPECT_EQ(live.pauses[0].p, 2u);
  EXPECT_DOUBLE_EQ(live.pauses[0].t0, 4.0);
  EXPECT_DOUBLE_EQ(live.pauses[0].t1, 48.0);
  EXPECT_TRUE(live.schedule.empty());
}

TEST(ScenarioLive, ClockSkewIsLiveOnly) {
  const Scenario s = Scenario{}.clock_skew(1, 1.5);
  const auto live = s.compile(5, Scenario::Target::kLive);
  ASSERT_EQ(live.skews.size(), 1u);
  EXPECT_DOUBLE_EQ(live.skews.at(1), 1.5);
  // The sim's virtual clock cannot skew: kSim lowering must refuse.
  EXPECT_THROW(s.compile(5, Scenario::Target::kSim), ContractViolation);
}

TEST(CompileLive, CrashRecoverPauseLowerToSortedActions) {
  Scenario s;
  s.crash(4, 8.0).recover(4, 60.0);
  s.pause(2, 4.0, 48.0);
  s.clock_skew(0, 1.5);
  s.clock_skew(1, 0.6);
  const LivePlan plan = compile_live(s, 5);
  ASSERT_EQ(plan.actions.size(), 4u);
  EXPECT_EQ(plan.actions[0].kind, Kind::kStop);
  EXPECT_EQ(plan.actions[0].node, 2u);
  EXPECT_EQ(plan.actions[1].kind, Kind::kKill);
  EXPECT_EQ(plan.actions[1].node, 4u);
  EXPECT_EQ(plan.actions[2].kind, Kind::kCont);
  EXPECT_DOUBLE_EQ(plan.actions[2].at, 48.0);
  EXPECT_EQ(plan.actions[3].kind, Kind::kRestart);
  EXPECT_DOUBLE_EQ(plan.actions[3].at, 60.0);
  // quiet_at is the last intervention: the restart.
  EXPECT_DOUBLE_EQ(plan.quiet_at, 60.0);
  ASSERT_EQ(plan.skews.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.skews.at(0), 1.5);
  EXPECT_DOUBLE_EQ(plan.skews.at(1), 0.6);
  EXPECT_TRUE(plan.schedule.empty());
}

TEST(CompileLive, QuietAtCoversTheLastHeal) {
  const LivePlan plan =
      compile_live(Scenario{}.partition(0.0, 40.0, {0, 1}), 5);
  EXPECT_DOUBLE_EQ(plan.quiet_at, 40.0);
  EXPECT_TRUE(plan.actions.empty());
  EXPECT_FALSE(plan.schedule.empty());
}

TEST(CompileLive, CutFreeLossyBaseStillProducesASchedule) {
  // FaultyTransport needs a schedule to arm; a pure lossy base policy must
  // become a single phase at t=0.
  const LivePlan plan = compile_live(
      Scenario{}.base_policy(net::NetworkPolicy::lossy(0.15, 0.10, 0.20)),
      5);
  ASSERT_EQ(plan.schedule.phases().size(), 1u);
  EXPECT_DOUBLE_EQ(plan.schedule.phases()[0].policy.link.drop_rate, 0.15);
  EXPECT_DOUBLE_EQ(plan.quiet_at, 0.0);
}

TEST(CompileLive, RejectsWhatHasNoLiveLowering) {
  EXPECT_THROW(
      compile_live(Scenario{}.delay_storm(0.0, 10.0, 4.0), 5),
      ContractViolation);
  EXPECT_THROW(
      compile_live(Scenario{}.crash_after(1, 25), 5),
      ContractViolation);
  EXPECT_THROW(
      compile_live(Scenario{}.byzantine(1, bcc::BehaviorSpec{}), 5),
      ContractViolation);
}

TEST(LivePresets, MatrixCompilesAndRespectsTheFaultBudget) {
  const auto& presets = live_presets();
  ASSERT_GE(presets.size(), 7u);
  std::set<std::string> names;
  for (const auto& p : presets) {
    names.insert(p.name);
    ASSERT_LE(p.crash_count, p.f) << p.name;
    const std::vector<sim::ProcessId> faulty =
        p.crash_count > 0 ? std::vector<sim::ProcessId>{4}
                          : std::vector<sim::ProcessId>{};
    const LivePlan plan = compile_live(p.build(faulty, p.n), p.n);
    // Every preset must go quiet so never-killed nodes can decide.
    EXPECT_TRUE(std::isfinite(plan.quiet_at)) << p.name;
    // Process-level actions only ever target the workload-faulty node.
    for (const LiveAction& a : plan.actions) {
      EXPECT_EQ(a.node, 4u) << p.name;
    }
  }
  EXPECT_EQ(names.size(), presets.size());  // names are unique
  for (const char* required :
       {"partition_heal", "asym_partition", "flapping_partition",
        "rolling_partition", "crash_recover_skew", "pause_resume",
        "lossy_links"}) {
    EXPECT_TRUE(names.count(required)) << required;
    EXPECT_NE(find_live_preset(required), nullptr);
  }
  EXPECT_EQ(find_live_preset("no_such_preset"), nullptr);
}

TEST(LivePresets, CrashRecoverSkewMeetsTheAcceptanceShape) {
  const LivePreset* p = find_live_preset("crash_recover_skew");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->crash_count, 1u);
  const LivePlan plan = compile_live(p->build({4}, p->n), p->n);
  ASSERT_EQ(plan.actions.size(), 2u);
  EXPECT_EQ(plan.actions[0].kind, Kind::kKill);
  EXPECT_EQ(plan.actions[1].kind, Kind::kRestart);
  // Acceptance requires skew >= 1.5x on at least one node.
  double max_skew = 0.0;
  for (const auto& [node, rate] : plan.skews) max_skew = std::max(max_skew, rate);
  EXPECT_GE(max_skew, 1.5);
}

TEST(LivePresets, FuzzSamplerIsSeededAndAlwaysQuiets) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const LivePreset p = sample_live_preset(seed);
    ASSERT_LE(p.crash_count, 1u) << seed;
    const std::vector<sim::ProcessId> faulty =
        p.crash_count > 0 ? std::vector<sim::ProcessId>{3}
                          : std::vector<sim::ProcessId>{};
    const LivePlan plan = compile_live(p.build(faulty, p.n), p.n);
    EXPECT_TRUE(std::isfinite(plan.quiet_at)) << seed;
    // f = 1 budget: at most one distinct process is ever killed/paused.
    std::set<sim::ProcessId> touched;
    for (const LiveAction& a : plan.actions) touched.insert(a.node);
    EXPECT_LE(touched.size(), 1u) << seed;
    // A skewed node is never also the killed/paused node.
    for (const auto& [node, rate] : plan.skews) {
      EXPECT_FALSE(touched.count(node)) << seed;
      EXPECT_GT(rate, 0.0) << seed;
    }
  }
  // Same seed, same structure; different seeds eventually differ.
  const LivePlan a = compile_live(sample_live_preset(5).build({3}, 5), 5);
  const LivePlan b = compile_live(sample_live_preset(5).build({3}, 5), 5);
  EXPECT_EQ(a.actions.size(), b.actions.size());
  EXPECT_DOUBLE_EQ(a.quiet_at, b.quiet_at);
  bool differs = false;
  for (std::uint64_t seed = 0; seed < 16 && !differs; ++seed) {
    const LivePlan c =
        compile_live(sample_live_preset(seed).build({3}, 5), 5);
    differs = c.quiet_at != a.quiet_at || c.actions.size() != a.actions.size();
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace chc::nemesis
