// Scenario fuzz: randomly composed nemesis scenarios (within the fault
// budget) must decide and stay checker-clean. A small seed sweep runs in
// the regular test tier; CI's nightly job drives `chc_nemesis --fuzz 200`
// for the deep sweep. CHC_NEMESIS_FUZZ_SEEDS overrides the count locally.
#include <gtest/gtest.h>

#include <cstdlib>

#include "nemesis/presets.hpp"

namespace chc::nemesis {
namespace {

std::uint64_t fuzz_seeds() {
  if (const char* env = std::getenv("CHC_NEMESIS_FUZZ_SEEDS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 12;
}

TEST(NemesisFuzz, SampledScenariosDecideCheckerClean) {
  const std::uint64_t seeds = fuzz_seeds();
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const Preset p = sample_preset(seed);
    EXPECT_TRUE(p.expect_decide) << p.name;
    const ScenarioResult r = run_preset(p, seed);
    EXPECT_TRUE(r.check.ok()) << p.name << ": " << summarize(r);
    EXPECT_TRUE(r.passed) << p.name << " (" << p.description
                          << "): " << summarize(r);
  }
}

TEST(NemesisFuzz, SamplerIsDeterministic) {
  const Preset a = sample_preset(42);
  const Preset b = sample_preset(42);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.description, b.description);
  // Same seed -> same scenario -> same run, bit for bit.
  const ScenarioResult ra = run_preset(a, 42);
  const ScenarioResult rb = run_preset(b, 42);
  EXPECT_EQ(ra.trace_lines, rb.trace_lines);
}

}  // namespace
}  // namespace chc::nemesis
