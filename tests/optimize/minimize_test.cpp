#include "optimize/minimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "geometry/polytope.hpp"

namespace chc::opt {
namespace {

geo::Polytope unit_square() {
  return geo::Polytope::box(geo::Vec{0, 0}, geo::Vec{1, 1});
}

TEST(Minimize, LinearExactAtVertex) {
  const LinearCost c(geo::Vec{1, 1});
  const auto r = minimize_over_polytope(c, unit_square());
  EXPECT_TRUE(approx_eq(r.argmin, geo::Vec{0, 0}, 1e-12));
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(Minimize, LinearOverTiltedPolytope) {
  const auto tri = geo::Polytope::from_points(
      {geo::Vec{0, 0}, geo::Vec{4, 1}, geo::Vec{1, 4}});
  const LinearCost c(geo::Vec{-1, 0});  // maximize x
  const auto r = minimize_over_polytope(c, tri);
  EXPECT_TRUE(approx_eq(r.argmin, geo::Vec{4, 1}, 1e-12));
}

TEST(Minimize, QuadraticInteriorMinimum) {
  const QuadraticCost c(geo::Vec{0.5, 0.5});
  const auto r = minimize_over_polytope(c, unit_square());
  EXPECT_NEAR(r.value, 0.0, 1e-8);
  EXPECT_LT(r.argmin.dist(geo::Vec{0.5, 0.5}), 1e-4);
}

TEST(Minimize, QuadraticExteriorTargetProjects) {
  // Target outside the square: minimizer is the projection (1, 0.5).
  const QuadraticCost c(geo::Vec{3.0, 0.5});
  const auto r = minimize_over_polytope(c, unit_square());
  EXPECT_LT(r.argmin.dist(geo::Vec{1.0, 0.5}), 1e-5);
  EXPECT_NEAR(r.value, 4.0, 1e-4);
}

TEST(Minimize, QuadraticOnSegment) {
  // Degenerate polytope: a segment in the plane.
  const auto seg =
      geo::Polytope::from_points({geo::Vec{0, 0}, geo::Vec{2, 2}});
  const QuadraticCost c(geo::Vec{2, 0});
  // min over t of ||(t,t)-(2,0)||^2 -> t = 1: point (1,1), value 2.
  const auto r = minimize_over_polytope(c, seg);
  EXPECT_LT(r.argmin.dist(geo::Vec{1, 1}), 1e-5);
  EXPECT_NEAR(r.value, 2.0, 1e-6);
}

TEST(Minimize, SinglePointPolytope) {
  const auto pt = geo::Polytope::from_points({geo::Vec{3, 4}});
  const QuadraticCost c(geo::Vec{0, 0});
  const auto r = minimize_over_polytope(c, pt);
  EXPECT_TRUE(approx_eq(r.argmin, geo::Vec{3, 4}, 1e-12));
  EXPECT_DOUBLE_EQ(r.value, 25.0);
}

TEST(Minimize, Theorem4CostFindsAGlobalMinimum) {
  // On [0,1] the Theorem-4 cost has minima exactly at 0 and 1 (value 3).
  const auto interval =
      geo::Polytope::from_points({geo::Vec{0.0}, geo::Vec{1.0}});
  const Theorem4Cost c;
  const auto r = minimize_over_polytope(c, interval);
  EXPECT_NEAR(r.value, 3.0, 1e-6);
  const bool at_endpoint = std::fabs(r.argmin[0]) < 1e-4 ||
                           std::fabs(r.argmin[0] - 1.0) < 1e-4;
  EXPECT_TRUE(at_endpoint) << "argmin = " << r.argmin[0];
}

TEST(Minimize, MultiWellFindsAnchorInside) {
  // Anchor (0.25, 0.25) lies inside; (5,5) does not. Global min is 0.
  const MultiWellCost c({geo::Vec{0.25, 0.25}, geo::Vec{5, 5}});
  const auto r = minimize_over_polytope(c, unit_square());
  EXPECT_NEAR(r.value, 0.0, 1e-6);
  EXPECT_LT(r.argmin.dist(geo::Vec{0.25, 0.25}), 1e-4);
}

TEST(Minimize, MultiWellAllAnchorsOutside) {
  // Both anchors outside: minimum is on the boundary nearest an anchor.
  const MultiWellCost c({geo::Vec{2.0, 0.5}});
  const auto r = minimize_over_polytope(c, unit_square());
  EXPECT_NEAR(r.value, 1.0, 1e-6);
  EXPECT_LT(r.argmin.dist(geo::Vec{1.0, 0.5}), 1e-3);
}

TEST(Minimize, ThreeDimensionalQuadratic) {
  const auto cube = geo::Polytope::box(geo::Vec{0, 0, 0}, geo::Vec{1, 1, 1});
  const QuadraticCost c(geo::Vec{2, 2, 2});
  const auto r = minimize_over_polytope(c, cube);
  EXPECT_LT(r.argmin.dist(geo::Vec{1, 1, 1}), 1e-4);
  EXPECT_NEAR(r.value, 3.0, 1e-3);
}

TEST(Minimize, EmptyPolytopeRejected) {
  const QuadraticCost c(geo::Vec{0, 0});
  EXPECT_THROW(minimize_over_polytope(c, geo::Polytope::empty(2)),
               ContractViolation);
}

TEST(Minimize, ResultAlwaysInsidePolytope) {
  const auto tri = geo::Polytope::from_points(
      {geo::Vec{0, 0}, geo::Vec{1, 0}, geo::Vec{0, 1}});
  const QuadraticCost cq(geo::Vec{5, 5});
  EXPECT_TRUE(tri.contains(minimize_over_polytope(cq, tri).argmin, 1e-6));
  const MultiWellCost cm({geo::Vec{5, 5}});
  EXPECT_TRUE(tri.contains(minimize_over_polytope(cm, tri).argmin, 1e-6));
}

}  // namespace
}  // namespace chc::opt
