#include "optimize/cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace chc::opt {
namespace {

TEST(LinearCost, ValueAndGradient) {
  const LinearCost c(geo::Vec{2, -1}, 3.0);
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{1, 1}), 4.0);
  ASSERT_TRUE(c.gradient(geo::Vec{0, 0}).has_value());
  EXPECT_TRUE(approx_eq(*c.gradient(geo::Vec{0, 0}), geo::Vec{2, -1}, 1e-15));
  EXPECT_TRUE(c.is_convex());
  EXPECT_NEAR(*c.lipschitz_on(geo::Vec{0, 0}, geo::Vec{1, 1}),
              std::sqrt(5.0), 1e-12);
}

TEST(QuadraticCost, ValueGradientLipschitz) {
  const QuadraticCost c(geo::Vec{1, 1});
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{2, 1}), 1.0);
  EXPECT_TRUE(approx_eq(*c.gradient(geo::Vec{2, 1}), geo::Vec{2, 0}, 1e-15));
  // On the box [0,1]^2 the farthest corner from (1,1) is (0,0): L = 2√2.
  EXPECT_NEAR(*c.lipschitz_on(geo::Vec{0, 0}, geo::Vec{1, 1}),
              2.0 * std::sqrt(2.0), 1e-12);
}

TEST(Theorem4Cost, ShapeMatchesPaper) {
  const Theorem4Cost c;
  // c(x) = 4 - (2x-1)^2 on [0,1]: minimum value 3 at BOTH endpoints,
  // maximum 4 at the midpoint; 3 outside.
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{0.0}), 3.0);
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{1.0}), 3.0);
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{0.5}), 4.0);
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{-5.0}), 3.0);
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{2.0}), 3.0);
  EXPECT_THROW(c.value(geo::Vec{0.0, 0.0}), ContractViolation);
}

TEST(MultiWellCost, MinAtAnchors) {
  const MultiWellCost c({geo::Vec{0, 0}, geo::Vec{2, 0}});
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{2, 0}), 0.0);
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(c.value(geo::Vec{3, 0}), 1.0);
  EXPECT_THROW(MultiWellCost({}), ContractViolation);
}

}  // namespace
}  // namespace chc::opt
