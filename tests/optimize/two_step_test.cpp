// Tests of §7's 2-step function optimization: validity, termination and
// weak β-optimality hold; ε-agreement on points is NOT guaranteed (and a
// test exhibits the paper's symmetric-cost tension).
#include "optimize/two_step.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace chc::opt {
namespace {

core::RunConfig base_config() {
  core::RunConfig rc;
  rc.cc = core::CCConfig{.n = 7, .f = 1, .d = 2, .eps = 0.05};
  rc.pattern = core::InputPattern::kUniform;
  rc.crash_style = core::CrashStyle::kMidBroadcast;
  rc.seed = 77;
  return rc;
}

TEST(EpsilonForBeta, Formula) {
  EXPECT_DOUBLE_EQ(epsilon_for_beta(0.1, 4.0), 0.025);
  EXPECT_THROW(epsilon_for_beta(0.0, 1.0), ContractViolation);
  EXPECT_THROW(epsilon_for_beta(0.1, 0.0), ContractViolation);
}

TEST(TwoStep, QuadraticCostWeakBetaOptimality) {
  // b-Lipschitz quadratic cost; with eps from beta/b, cost spread < beta.
  auto rc = base_config();
  const QuadraticCost cost(geo::Vec{0.0, 0.0});
  // Inputs live in [-2,2]^2 (incorrect inputs included): L <= 2*diam.
  const double b = *cost.lipschitz_on(geo::Vec{-2, -2}, geo::Vec{2, 2});
  const double beta = 0.2;
  rc.cc.eps = epsilon_for_beta(beta, b);
  const auto out = optimize_two_step(rc, cost);
  ASSERT_TRUE(out.all_decided);
  EXPECT_TRUE(out.validity);
  EXPECT_LT(out.max_cost_spread, beta);
}

TEST(TwoStep, LinearCostAgreesTightly) {
  auto rc = base_config();
  const LinearCost cost(geo::Vec{1.0, 0.5});
  const auto out = optimize_two_step(rc, cost);
  ASSERT_TRUE(out.all_decided);
  EXPECT_TRUE(out.validity);
  // |c(yi)-c(yj)| <= b * d_H(h_i, h_j) <= |g| * eps.
  EXPECT_LT(out.max_cost_spread, cost.direction().norm() * rc.cc.eps + 1e-9);
}

TEST(TwoStep, StronglyConvexCostAlsoAgreesOnPoints) {
  // The paper conjectures point agreement for strongly convex costs; the
  // quadratic's unique minimizer over nearby polytopes is stable.
  auto rc = base_config();
  rc.cc.eps = 0.01;
  const QuadraticCost cost(geo::Vec{0.1, -0.2});
  const auto out = optimize_two_step(rc, cost);
  ASSERT_TRUE(out.all_decided);
  EXPECT_LT(out.max_point_spread, 0.35);  // small, though not proven < eps
}

TEST(TwoStep, SymmetricTieCanBreakPointAgreement) {
  // Theorem-4 style tension in d=1: inputs split between 0 and 1; the cost
  // has two global minima at the interval's ends. Processes' polytopes
  // differ by up to eps, so argmin ties can break either way. We assert the
  // weak properties hold; point agreement is allowed to fail (and the
  // spread is reported for the experiment).
  core::RunConfig rc;
  rc.cc = core::CCConfig{.n = 4, .f = 1, .d = 1, .eps = 0.05};
  rc.pattern = core::InputPattern::kUniform;
  rc.crash_style = core::CrashStyle::kNone;
  rc.seed = 5;
  const Theorem4Cost cost;
  const auto out = optimize_two_step(rc, cost);
  ASSERT_TRUE(out.all_decided);
  EXPECT_TRUE(out.validity);
  EXPECT_LT(out.max_cost_spread, 4.0 * rc.cc.eps + 1e-6);
}

TEST(TwoStep, IdenticalInputClauseOfWeakOptimality) {
  // Weak β-optimality (ii): if 2f+1 processes share input x*, then
  // c(y_i) <= c(x*). With the identical-input workload all n-f >= 2f+1
  // correct processes share x*.
  auto rc = base_config();
  rc.pattern = core::InputPattern::kIdentical;
  const QuadraticCost cost(geo::Vec{0.7, 0.7});
  const auto out = optimize_two_step(rc, cost);
  ASSERT_TRUE(out.all_decided);
  const double cx_star = cost.value(out.run.correct_inputs[0]);
  for (const auto& o : out.outputs) {
    EXPECT_LE(o.cost, cx_star + 1e-6);
  }
}

TEST(TwoStep, OutputsInsideDecidedPolytopes) {
  const auto out = optimize_two_step(base_config(), QuadraticCost(geo::Vec{0, 0}));
  ASSERT_TRUE(out.all_decided);
  for (const auto& o : out.outputs) {
    const auto& dec = out.run.trace->of(o.pid).decision;
    ASSERT_TRUE(dec.has_value());
    EXPECT_TRUE(dec->contains(o.y, 1e-5));
  }
}

}  // namespace
}  // namespace chc::opt
