// Tie-breaking policies in step 2 (the "break tie arbitrarily" freedom).
#include <gtest/gtest.h>

#include "geometry/polytope.hpp"
#include "optimize/minimize.hpp"

namespace chc::opt {
namespace {

TEST(TieBreak, SymmetricCostPicksRequestedEnd) {
  // Theorem-4 cost over [0, 1]: global minima at both ends, value 3.
  const auto interval =
      geo::Polytope::from_points({geo::Vec{0.0}, geo::Vec{1.0}});
  const Theorem4Cost cost;

  MinimizeOptions lo;
  lo.tie_break = TieBreak::kLexMin;
  const auto rl = minimize_over_polytope(cost, interval, lo);
  EXPECT_NEAR(rl.argmin[0], 0.0, 1e-4);
  EXPECT_NEAR(rl.value, 3.0, 1e-6);

  MinimizeOptions hi;
  hi.tie_break = TieBreak::kLexMax;
  const auto rh = minimize_over_polytope(cost, interval, hi);
  EXPECT_NEAR(rh.argmin[0], 1.0, 1e-4);
  EXPECT_NEAR(rh.value, 3.0, 1e-6);
}

TEST(TieBreak, LinearCostTiedEdge) {
  // Cost depends only on x: the whole left edge of the square minimizes.
  const auto sq = geo::Polytope::box(geo::Vec{0, 0}, geo::Vec{1, 1});
  const LinearCost cost(geo::Vec{1.0, 0.0});
  MinimizeOptions lo;
  lo.tie_break = TieBreak::kLexMin;
  const auto rl = minimize_over_polytope(cost, sq, lo);
  EXPECT_NEAR(rl.argmin[0], 0.0, 1e-12);
  EXPECT_NEAR(rl.argmin[1], 0.0, 1e-12);  // lexicographically smallest
  MinimizeOptions hi;
  hi.tie_break = TieBreak::kLexMax;
  const auto rh = minimize_over_polytope(cost, sq, hi);
  EXPECT_NEAR(rh.argmin[0], 0.0, 1e-12);
  EXPECT_NEAR(rh.argmin[1], 1.0, 1e-12);  // lexicographically largest tie
}

TEST(TieBreak, NoEffectOnUniqueMinimum) {
  const auto sq = geo::Polytope::box(geo::Vec{0, 0}, geo::Vec{1, 1});
  const QuadraticCost cost(geo::Vec{0.3, 0.6});
  for (const auto tb :
       {TieBreak::kFirst, TieBreak::kLexMin, TieBreak::kLexMax}) {
    MinimizeOptions mo;
    mo.tie_break = tb;
    const auto r = minimize_over_polytope(cost, sq, mo);
    EXPECT_LT(r.argmin.dist(geo::Vec{0.3, 0.6}), 1e-4);
  }
}

}  // namespace
}  // namespace chc::opt
