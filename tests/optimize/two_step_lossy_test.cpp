// §7's 2-step optimization under crash faults AND lossy links — the regime
// the fault-free two_step_test leaves uncovered. The reliable-channel shim
// restores the crash-fault model over fair-lossy links, so validity and
// weak β-optimality must hold exactly as in the clean runs; the tests also
// assert the adversary genuinely bit (drops happened, the shim worked).
#include <gtest/gtest.h>

#include <string>

#include "core/lossy.hpp"
#include "net/policy.hpp"
#include "optimize/two_step.hpp"

namespace chc::opt {
namespace {

core::LossyRunConfig lossy_config(core::CrashStyle crash, std::uint64_t seed) {
  core::LossyRunConfig lc;
  lc.base.cc = core::CCConfig{.n = 5, .f = 1, .d = 2, .eps = 0.05};
  lc.base.pattern = core::InputPattern::kUniform;
  lc.base.crash_style = crash;
  lc.base.seed = seed;
  lc.policy = net::NetworkPolicy::lossy(0.20, 0.05, 0.10);
  lc.reliable = true;
  return lc;
}

TEST(TwoStepLossy, QuadraticWeakBetaOptimalitySurvivesDropsAndCrashes) {
  auto lc = lossy_config(core::CrashStyle::kMidBroadcast, 77);
  const QuadraticCost cost(geo::Vec{0.0, 0.0});
  // Inputs live in [-2,2]^2 (incorrect inputs included): b bounds the cost
  // there, and eps = beta/b makes the cost spread provably < beta.
  const double b = *cost.lipschitz_on(geo::Vec{-2, -2}, geo::Vec{2, 2});
  const double beta = 0.2;
  lc.base.cc.eps = epsilon_for_beta(beta, b);
  const auto out = optimize_two_step_lossy(lc, cost);
  ASSERT_TRUE(out.run.quiescent);
  ASSERT_TRUE(out.all_decided);
  EXPECT_TRUE(out.validity);
  EXPECT_LT(out.max_cost_spread, beta);
  // The network genuinely misbehaved and the shim genuinely recovered.
  EXPECT_GT(out.run.stats.net_dropped, 0u);
  EXPECT_GT(out.run.stats.retransmits, 0u);
}

TEST(TwoStepLossy, LinearCostBoundHoldsUnderEarlyCrashes) {
  const auto lc = lossy_config(core::CrashStyle::kEarly, 31);
  const LinearCost cost(geo::Vec{1.0, 0.5});
  const auto out = optimize_two_step_lossy(lc, cost);
  ASSERT_TRUE(out.all_decided);
  EXPECT_TRUE(out.validity);
  // |c(yi)-c(yj)| <= |g| * d_H(h_i, h_j) <= |g| * eps.
  EXPECT_LT(out.max_cost_spread,
            cost.direction().norm() * lc.base.cc.eps + 1e-9);
}

TEST(TwoStepLossy, OutputsStayInsideDecidedPolytopes) {
  const auto out = optimize_two_step_lossy(
      lossy_config(core::CrashStyle::kLate, 5), QuadraticCost(geo::Vec{0, 0}));
  ASSERT_TRUE(out.all_decided);
  ASSERT_FALSE(out.outputs.empty());
  for (const auto& o : out.outputs) {
    const auto& dec = out.run.trace->of(o.pid).decision;
    ASSERT_TRUE(dec.has_value());
    EXPECT_TRUE(dec->contains(o.y, 1e-5));
  }
}

TEST(TwoStepLossy, SweepAcrossCrashStylesKeepsWeakOptimality) {
  // The satellite requirement: a sweep over crash styles x seeds, all under
  // the lossy preset, every run certified for validity + the beta bound.
  const QuadraticCost cost(geo::Vec{0.3, -0.1});
  const double b = *cost.lipschitz_on(geo::Vec{-2, -2}, geo::Vec{2, 2});
  const double beta = 0.25;
  for (const core::CrashStyle style :
       {core::CrashStyle::kEarly, core::CrashStyle::kMidBroadcast,
        core::CrashStyle::kLate}) {
    for (const std::uint64_t seed : {3u, 19u}) {
      auto lc = lossy_config(style, seed);
      lc.base.cc.eps = epsilon_for_beta(beta, b);
      const auto out = optimize_two_step_lossy(lc, cost);
      const std::string ctx = "crash=" + std::to_string(static_cast<int>(style)) +
                              " seed=" + std::to_string(seed);
      ASSERT_TRUE(out.all_decided) << ctx;
      EXPECT_TRUE(out.validity) << ctx;
      EXPECT_LT(out.max_cost_spread, beta) << ctx;
    }
  }
}

}  // namespace
}  // namespace chc::opt
