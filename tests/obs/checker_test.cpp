// Offline checker end-to-end: traces produced by the harness are accepted
// (with real work done), and hand-corrupted traces are rejected with the
// right invariant named.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/lossy.hpp"
#include "core/workload.hpp"
#include "geometry/vec.hpp"
#include "obs/checker.hpp"
#include "obs/trace.hpp"

namespace chc {
namespace {

core::LossyRunConfig base_config(std::uint64_t seed) {
  core::LossyRunConfig lc;
  lc.base.cc = core::CCConfig{.n = 5, .f = 1, .d = 2, .eps = 0.15};
  lc.base.seed = seed;
  lc.base.crash_style = core::CrashStyle::kNone;
  lc.reliable = false;
  return lc;
}

/// Runs the configuration with tracing on and returns the trace lines.
std::vector<std::string> record(core::LossyRunConfig lc) {
  obs::MemorySink sink;
  obs::Tracer tracer(&sink);
  lc.tracer = &tracer;
  const core::Workload w = core::make_workload(
      lc.base.cc.n, lc.base.cc.f, lc.base.cc.d, lc.base.pattern, lc.base.seed,
      lc.base.cc.fault_model == core::FaultModel::kCrashIncorrectInputs);
  const core::LossyRunOutput out = core::run_cc_lossy_custom(lc, w);
  EXPECT_TRUE(out.quiescent);
  EXPECT_TRUE(out.cert.all_decided);
  return sink.lines();
}

/// Index of the first line whose event matches `pred`, or npos.
template <typename Pred>
std::size_t find_event_line(const std::vector<std::string>& lines,
                            Pred&& pred, obs::TraceEvent* out = nullptr) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    obs::TraceEvent e;
    if (!obs::parse_event(lines[i], e, nullptr)) continue;
    if (pred(e)) {
      if (out != nullptr) *out = e;
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

bool has_invariant(const obs::CheckReport& report, const std::string& name) {
  for (const auto& v : report.violations) {
    if (v.invariant == name) return true;
  }
  return false;
}

TEST(Checker, AcceptsCleanRun) {
  const auto lines = record(base_config(21));
  const obs::CheckReport report = obs::check_trace_lines(lines);
  EXPECT_TRUE(report.ok()) << (report.parsed
                                   ? obs::describe(report.violations.front())
                                   : report.parse_error);
  // "Accepted" must mean "checked": geometry work actually happened.
  EXPECT_GT(report.snapshots_checked, 0u);
  EXPECT_GT(report.containments_checked, 0u);
  EXPECT_GT(report.pairs_checked, 0u);
  EXPECT_GT(report.rounds_seen, 0u);
  EXPECT_TRUE(report.iz_checked);
}

TEST(Checker, AcceptsCrashedLaggedRun) {
  // kMidBroadcast + kLaggedOneCorrect is the regime where correct round-0
  // views genuinely differ and h_i[t] ⊆ h_i[t-1] fails — the union-form
  // containment the checker verifies must still hold.
  core::LossyRunConfig lc = base_config(22);
  lc.base.crash_style = core::CrashStyle::kMidBroadcast;
  lc.base.delay = core::DelayRegime::kLaggedOneCorrect;
  const auto lines = record(lc);
  const obs::CheckReport report = obs::check_trace_lines(lines);
  EXPECT_TRUE(report.ok()) << (report.parsed
                                   ? obs::describe(report.violations.front())
                                   : report.parse_error);
}

TEST(Checker, AcceptsLossyShimmedRun) {
  core::LossyRunConfig lc = base_config(23);
  lc.base.crash_style = core::CrashStyle::kEarly;
  lc.policy = net::NetworkPolicy::lossy(0.15, 0.05, 0.10);
  lc.reliable = true;
  const auto lines = record(lc);
  const obs::CheckReport report = obs::check_trace_lines(lines);
  EXPECT_TRUE(report.ok()) << (report.parsed
                                   ? obs::describe(report.violations.front())
                                   : report.parse_error);
}

TEST(Checker, RejectsInflatedRoundSnapshot) {
  std::vector<std::string> lines = record(base_config(24));
  obs::TraceEvent e;
  const std::size_t idx = find_event_line(
      lines,
      [](const obs::TraceEvent& ev) {
        return ev.kind == obs::EventKind::kRound && ev.round >= 2;
      },
      &e);
  ASSERT_NE(idx, static_cast<std::size_t>(-1));

  // Inflate the recorded h_i[t]: scale every vertex away from the origin.
  for (geo::Vec& v : e.verts) v = v * 3.0;
  lines[idx] = obs::to_jsonl(e);

  const obs::CheckReport report = obs::check_trace_lines(lines);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_invariant(report, "containment") ||
              has_invariant(report, "validity"))
      << obs::describe(report.violations.front());
  // The diagnostic points at the corrupted line (1-based).
  bool points_at_line = false;
  for (const auto& v : report.violations) {
    if (v.line == idx + 1) points_at_line = true;
  }
  EXPECT_TRUE(points_at_line);
}

TEST(Checker, RejectsTamperedDecision) {
  std::vector<std::string> lines = record(base_config(25));
  obs::TraceEvent e;
  const std::size_t idx = find_event_line(
      lines,
      [](const obs::TraceEvent& ev) {
        return ev.kind == obs::EventKind::kDecide;
      },
      &e);
  ASSERT_NE(idx, static_cast<std::size_t>(-1));

  const geo::Vec shift(std::vector<double>{2.0, 2.0});
  for (geo::Vec& v : e.verts) v = v + shift;
  lines[idx] = obs::to_jsonl(e);

  const obs::CheckReport report = obs::check_trace_lines(lines);
  EXPECT_FALSE(report.ok());
  // The shifted decision no longer matches the recorded round state, and
  // (being 2*sqrt(2) away from the others') breaches ε-agreement.
  EXPECT_TRUE(has_invariant(report, "structure") ||
              has_invariant(report, "eps-agreement"))
      << obs::describe(report.violations.front());
}

TEST(Checker, RejectsSeqRegression) {
  std::vector<std::string> lines = record(base_config(26));
  // Swapping two adjacent event records breaks the strictly-increasing seq
  // requirement for env == "sim" traces.
  ASSERT_GT(lines.size(), 4u);
  std::swap(lines[2], lines[3]);
  const obs::CheckReport report = obs::check_trace_lines(lines);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_invariant(report, "structure"));
}

TEST(Checker, RejectsTraceWithoutHeader) {
  std::vector<std::string> lines = record(base_config(27));
  lines.erase(lines.begin());
  const obs::CheckReport report = obs::check_trace_lines(lines);
  EXPECT_FALSE(report.parsed);
  EXPECT_FALSE(report.parse_error.empty());
}

TEST(Checker, RejectsRoundWithoutRoundStart) {
  std::vector<std::string> lines = record(base_config(28));
  obs::TraceEvent round_event;
  const std::size_t round_idx = find_event_line(
      lines,
      [](const obs::TraceEvent& ev) {
        return ev.kind == obs::EventKind::kRound && ev.round == 3;
      },
      &round_event);
  ASSERT_NE(round_idx, static_cast<std::size_t>(-1));
  const std::size_t start_idx = find_event_line(
      lines, [&round_event](const obs::TraceEvent& ev) {
        return ev.kind == obs::EventKind::kRoundStart &&
               ev.p == round_event.p && ev.round == round_event.round;
      });
  ASSERT_NE(start_idx, static_cast<std::size_t>(-1));
  ASSERT_LT(start_idx, round_idx);
  lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(start_idx));
  const obs::CheckReport report = obs::check_trace_lines(lines);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_invariant(report, "structure"));
}

}  // namespace
}  // namespace chc
