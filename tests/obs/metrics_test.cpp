// Metrics registry: bucketing edges, overflow, handle identity, concurrent
// observation, deterministic JSON.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace chc::obs {
namespace {

TEST(Histogram, AssignsToFirstFittingBucket) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1.0          -> bucket 0
  h.observe(1.0);   // == bound, x<=1  -> bucket 0
  h.observe(1.5);   // <= 2.0          -> bucket 1
  h.observe(4.0);   // == bound        -> bucket 2
  h.observe(4.01);  // > bounds.back() -> overflow
  h.observe(100.0);

  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 4.01 + 100.0);
}

TEST(Histogram, ConcurrentObservationsLoseNothing) {
  Histogram h({10.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread * 1.0);
  EXPECT_EQ(h.counts()[0], static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Registry, HandlesAreStableAndSharedByName) {
  Registry reg;
  Counter& a = reg.counter("x.sent");
  Counter& b = reg.counter("x.sent");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(2);
  EXPECT_EQ(reg.counter("x.sent").value(), 3u);

  Gauge& g = reg.gauge("x.end_time");
  g.set(12.5);
  EXPECT_EQ(&g, &reg.gauge("x.end_time"));

  Histogram& h1 = reg.histogram("x.lat", {1.0, 2.0});
  Histogram& h2 = reg.histogram("x.lat", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, JsonIsDeterministicAndSorted) {
  const auto build = [] {
    Registry reg;
    reg.counter("b.count").inc(7);
    reg.counter("a.count").inc(1);
    reg.gauge("z.gauge").set(0.5);
    Histogram& h = reg.histogram("m.hist", {1.0, 4.0});
    h.observe(0.5);
    h.observe(8.0);
    return reg.to_json();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());
  // Name-sorted: "a.count" precedes "b.count" in the serialized report.
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
  EXPECT_NE(json.find("m.hist"), std::string::npos);
  EXPECT_NE(json.find("z.gauge"), std::string::npos);
}

}  // namespace
}  // namespace chc::obs
