// Tracer + event serialization: round-trips, seq ordering, disabled-sink
// laziness, concurrent emission (TSan coverage for the sink mutexes).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace chc::obs {
namespace {

TraceEvent sample_round_event() {
  TraceEvent e;
  e.kind = EventKind::kRound;
  e.t = 12.5;
  e.p = 3;
  e.round = 7;
  e.senders = {0, 1, 3, 4};
  e.verts = {geo::Vec{0.25, -1.0}, geo::Vec{0.5, 0.125}};
  return e;
}

TEST(TraceEvent, RoundTripsEveryKind) {
  std::vector<TraceEvent> events;
  {
    TraceEvent e;
    e.kind = EventKind::kSend;
    e.t = 0.75;
    e.p = 1;
    e.peer = 2;
    e.tag = 400;
    events.push_back(e);
  }
  {
    TraceEvent e;
    e.kind = EventKind::kNetDup;
    e.t = 1.5;
    e.p = 0;
    e.peer = 4;
    e.tag = 900;
    e.aux = 2;
    events.push_back(e);
  }
  {
    TraceEvent e;
    e.kind = EventKind::kCrash;
    e.t = 3.25;
    e.p = 2;
    events.push_back(e);
  }
  {
    TraceEvent e;
    e.kind = EventKind::kRound0;
    e.t = 9.0;
    e.p = 0;
    e.view = {{0, geo::Vec{0.1, 0.2}}, {1, geo::Vec{-0.3, 0.4}}};
    e.verts = {geo::Vec{0.0, 0.0}};
    events.push_back(e);
  }
  events.push_back(sample_round_event());

  for (const TraceEvent& e : events) {
    const std::string line = to_jsonl(e);
    TraceEvent back;
    std::string error;
    ASSERT_TRUE(parse_event(line, back, &error)) << line << ": " << error;
    EXPECT_EQ(back.kind, e.kind);
    EXPECT_EQ(back.t, e.t);
    EXPECT_EQ(back.p, e.p);
    EXPECT_EQ(back.peer, e.peer);
    EXPECT_EQ(back.tag, e.tag);
    EXPECT_EQ(back.round, e.round);
    EXPECT_EQ(back.aux, e.aux);
    EXPECT_EQ(back.senders, e.senders);
    ASSERT_EQ(back.verts.size(), e.verts.size());
    for (std::size_t i = 0; i < e.verts.size(); ++i) {
      EXPECT_TRUE(back.verts[i] == e.verts[i]);
    }
    ASSERT_EQ(back.view.size(), e.view.size());
    for (std::size_t i = 0; i < e.view.size(); ++i) {
      EXPECT_EQ(back.view[i].first, e.view[i].first);
      EXPECT_TRUE(back.view[i].second == e.view[i].second);
    }
    // Determinism: serializing the parse is byte-identical.
    TraceEvent again = back;
    EXPECT_EQ(to_jsonl(again), line);
  }
}

TEST(TraceHeader, RoundTrips) {
  TraceHeader h;
  h.env = "sim";
  h.n = 5;
  h.f = 1;
  h.d = 2;
  h.eps = 0.15;
  h.input_magnitude = 1.25;
  h.round0_naive = true;
  h.correct_inputs_model = true;
  h.t_end = 18;
  h.pattern = 2;
  h.crash_style = 1;
  h.delay = 3;
  h.seed = 0xDEADBEEFCAFEF00Dull;  // beyond 2^53: must survive as u64
  h.drop = 0.25;
  h.reliable = true;
  h.max_retries = 7;
  h.faulty = {4};
  h.inputs = {{0.1, 0.2}, {0.3, 0.4}, {-0.5, 0.0}, {1.0, -1.0}, {9.0, 9.0}};

  const std::string line = to_jsonl(h);
  TraceHeader back;
  std::string error;
  ASSERT_TRUE(parse_header(line, back, &error)) << error;
  EXPECT_EQ(back.env, h.env);
  EXPECT_EQ(back.n, h.n);
  EXPECT_EQ(back.f, h.f);
  EXPECT_EQ(back.d, h.d);
  EXPECT_EQ(back.eps, h.eps);
  EXPECT_EQ(back.input_magnitude, h.input_magnitude);
  EXPECT_EQ(back.round0_naive, h.round0_naive);
  EXPECT_EQ(back.correct_inputs_model, h.correct_inputs_model);
  EXPECT_EQ(back.t_end, h.t_end);
  EXPECT_EQ(back.pattern, h.pattern);
  EXPECT_EQ(back.crash_style, h.crash_style);
  EXPECT_EQ(back.delay, h.delay);
  EXPECT_EQ(back.seed, h.seed);
  EXPECT_EQ(back.drop, h.drop);
  EXPECT_EQ(back.reliable, h.reliable);
  EXPECT_EQ(back.max_retries, h.max_retries);
  EXPECT_EQ(back.faulty, h.faulty);
  EXPECT_EQ(back.inputs, h.inputs);
  EXPECT_EQ(to_jsonl(back), line);
}

TEST(TraceFooter, RoundTrips) {
  TraceFooter f;
  f.quiescent = true;
  f.decided = 4;
  TraceFooter back;
  std::string error;
  ASSERT_TRUE(parse_footer(to_jsonl(f), back, &error)) << error;
  EXPECT_EQ(back.quiescent, f.quiescent);
  EXPECT_EQ(back.decided, f.decided);
}

TEST(Tracer, StampsStrictlyIncreasingSeq) {
  MemorySink sink;
  Tracer tracer(&sink);
  ASSERT_TRUE(tracer.enabled());
  for (int i = 0; i < 10; ++i) tracer.emit(sample_round_event());
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
}

TEST(Tracer, DisabledSinkNeverBuildsTheEvent) {
  Tracer tracer;  // no sink
  ASSERT_FALSE(tracer.enabled());
  // emit_with must not invoke the builder at all — the disabled path is one
  // pointer test, with no event construction or allocation behind it.
  int built = 0;
  tracer.emit_with([&] {
    ++built;
    return sample_round_event();
  });
  EXPECT_EQ(built, 0);

  MemorySink sink;
  Tracer on(&sink);
  on.emit_with([&] {
    ++built;
    return sample_round_event();
  });
  EXPECT_EQ(built, 1);
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(Tracer, ConcurrentEmissionKeepsSeqsUnique) {
  MemorySink sink;
  Tracer tracer(&sink);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent e;
        e.kind = EventKind::kSend;
        e.p = static_cast<Pid>(t);
        e.peer = 0;
        e.tag = i;
        tracer.emit(e);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto events = sink.events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::uint64_t> seqs;
  for (const auto& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), events.size()) << "seq stamps must be unique";
}

TEST(JsonlFileSink, WritesParseableLines) {
  const std::string path = ::testing::TempDir() + "chc_tracer_test.jsonl";
  {
    JsonlFileSink sink(path);
    Tracer tracer(&sink);
    tracer.line("{\"kind\":\"header\"}");
    tracer.emit(sample_round_event());
    sink.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"kind\":\"header\"}");
  ASSERT_TRUE(std::getline(in, line));
  TraceEvent e;
  EXPECT_TRUE(parse_event(line, e, nullptr));
  EXPECT_EQ(e.kind, EventKind::kRound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chc::obs
