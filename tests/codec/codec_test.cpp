// Wire-format tests: round trips, strict bounds checking, and garbage
// rejection (decoders sit on the Byzantine path).
#include "codec/codec.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"

namespace chc::codec {
namespace {

TEST(Codec, VecRoundTrip) {
  const geo::Vec v{1.5, -2.25, 1e-300, 1e300, 0.0};
  const auto buf = encode(v);
  EXPECT_EQ(buf.size(), encoded_size(v));
  const auto back = decode_vec(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(approx_eq(*back, v, 0.0));  // bit-exact
}

TEST(Codec, VecRandomRoundTrips) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto d = static_cast<std::size_t>(rng.uniform_int(1, 8));
    geo::Vec v(d);
    for (std::size_t c = 0; c < d; ++c) v[c] = rng.normal() * 1e3;
    const auto back = decode_vec(encode(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(approx_eq(*back, v, 0.0));
  }
}

TEST(Codec, PolytopeRoundTrip) {
  const auto p = geo::Polytope::from_points(
      {geo::Vec{0, 0}, geo::Vec{1, 0}, geo::Vec{1, 1}, geo::Vec{0, 1}});
  const auto buf = encode(p);
  EXPECT_EQ(buf.size(), encoded_size(p));
  const auto back = decode_polytope(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(geo::approx_equal(*back, p, 1e-12));
}

TEST(Codec, EmptyAndDegeneratePolytopes) {
  const auto empty = geo::Polytope::empty(3);
  const auto back = decode_polytope(encode(empty));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_empty());
  EXPECT_EQ(back->ambient_dim(), 3u);

  const auto point = geo::Polytope::from_points({geo::Vec{1, 2, 3}});
  const auto back2 = decode_polytope(encode(point));
  ASSERT_TRUE(back2.has_value());
  EXPECT_TRUE(geo::approx_equal(*back2, point, 1e-12));
}

TEST(Codec, ViewRoundTrip) {
  dsm::View view(4);
  view[1] = geo::Vec{3.5, -1.0};
  view[3] = geo::Vec{0.0, 0.0};
  const auto buf = encode(view);
  EXPECT_EQ(buf.size(), encoded_size(view));
  const auto back = decode_view(buf);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 4u);
  EXPECT_FALSE((*back)[0].has_value());
  EXPECT_TRUE((*back)[1].has_value());
  EXPECT_TRUE(approx_eq(*(*back)[1], geo::Vec{3.5, -1.0}, 0.0));
  EXPECT_FALSE((*back)[2].has_value());
  EXPECT_TRUE((*back)[3].has_value());
}

TEST(Codec, TruncatedBuffersRejected) {
  const geo::Vec v{1.0, 2.0, 3.0};
  auto buf = encode(v);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    Buffer trunc(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_vec(trunc).has_value()) << "cut=" << cut;
  }
}

TEST(Codec, TrailingGarbageRejected) {
  auto buf = encode(geo::Vec{1.0});
  buf.push_back(0x42);
  EXPECT_FALSE(decode_vec(buf).has_value());
}

TEST(Codec, AbsurdClaimsRejected) {
  // Vec claiming 2^31 coordinates.
  Writer w;
  w.put_u32(0x7FFFFFFF);
  EXPECT_FALSE(decode_vec(w.take()).has_value());

  // Polytope claiming more vertices than the cap.
  Writer w2;
  w2.put_u32(2);
  w2.put_u32(100000);
  EXPECT_FALSE(decode_polytope(w2.take(), 4096).has_value());

  // View with an invalid presence flag.
  Writer w3;
  w3.put_u32(1);
  w3.put_u32(7);
  EXPECT_FALSE(decode_view(w3.take()).has_value());
}

TEST(Codec, NonFinitePolytopeCoordinatesRejected) {
  Writer w;
  w.put_u32(2);  // dim
  w.put_u32(1);  // one vertex
  w.put_u32(2);  // vec dim
  w.put_f64(std::numeric_limits<double>::quiet_NaN());
  w.put_f64(1.0);
  EXPECT_FALSE(decode_polytope(w.take()).has_value());
}

TEST(Codec, RandomGarbageNeverCrashes) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    Buffer buf(static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    // Must not crash or throw; may or may not decode.
    (void)decode_vec(buf);
    (void)decode_view(buf);
    (void)decode_polytope(buf);
  }
  SUCCEED();
}

TEST(Codec, RelFrameRoundTrip) {
  RelFrame f;
  f.seq = 0xDEADBEEFCAFE0001ULL;
  f.cum_ack = 42;
  f.inner_tag = 203;
  f.src_epoch = 2;
  f.dst_epoch = 5;
  f.inner = encode(geo::Vec{1.0, -2.5});
  const auto buf = encode(f);
  EXPECT_EQ(buf.size(), encoded_size(f));
  const auto back = decode_rel_frame(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, f.seq);
  EXPECT_EQ(back->cum_ack, f.cum_ack);
  EXPECT_EQ(back->inner_tag, f.inner_tag);
  EXPECT_EQ(back->src_epoch, 2u);
  EXPECT_EQ(back->dst_epoch, 5u);
  EXPECT_EQ(back->inner, f.inner);
  // Nested payload decodes in turn.
  const auto inner = decode_vec(back->inner);
  ASSERT_TRUE(inner.has_value());
  EXPECT_TRUE(approx_eq(*inner, geo::Vec{1.0, -2.5}, 0.0));
}

TEST(Codec, RelFrameEmptyPayloadRoundTrip) {
  RelFrame f;
  f.seq = 7;
  const auto back = decode_rel_frame(encode(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 7u);
  EXPECT_TRUE(back->inner.empty());
}

TEST(Codec, RelFrameMalformedRejected) {
  RelFrame f;
  f.seq = 9;
  f.inner = {1, 2, 3, 4};
  auto buf = encode(f);

  // Truncated anywhere in the frame.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    Buffer trunc(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_rel_frame(trunc).has_value()) << "cut=" << cut;
  }
  // Trailing garbage (claimed length below actual remainder).
  buf.push_back(0xFF);
  EXPECT_FALSE(decode_rel_frame(buf).has_value());
  // Claimed inner length beyond the cap.
  Writer w;
  w.put_u64(0);
  w.put_u64(0);
  w.put_u32(1);       // tag
  w.put_u32(0);       // src_epoch
  w.put_u32(0);       // dst_epoch
  w.put_u32(1u << 30);
  EXPECT_FALSE(decode_rel_frame(w.take()).has_value());
}

TEST(Codec, RelAckRoundTripAndRejection) {
  RelAckFrame a;
  a.cum_ack = 0x0123456789ABCDEFULL;
  a.src_epoch = 3;
  a.dst_epoch = 1;
  const auto buf = encode_rel_ack(a);
  EXPECT_EQ(buf.size(), 16u);  // u64 cum_ack + two u32 epochs
  const auto back = decode_rel_ack(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cum_ack, a.cum_ack);
  EXPECT_EQ(back->src_epoch, 3u);
  EXPECT_EQ(back->dst_epoch, 1u);

  EXPECT_FALSE(decode_rel_ack(Buffer{1, 2, 3}).has_value());  // truncated
  Buffer extra = buf;
  extra.push_back(0);
  EXPECT_FALSE(decode_rel_ack(extra).has_value());  // trailing garbage
}

TEST(Codec, DecodedPolytopeIsCanonicalized) {
  // Duplicate + interior points on the wire: the decoder re-canonicalizes.
  Writer w;
  w.put_u32(2);
  w.put_u32(5);
  for (const auto& v :
       {geo::Vec{0, 0}, geo::Vec{2, 0}, geo::Vec{0, 2}, geo::Vec{0, 0},
        geo::Vec{0.5, 0.5}}) {
    w.put_vec(v);
  }
  const auto p = decode_polytope(w.take());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->vertices().size(), 3u);
}

}  // namespace
}  // namespace chc::codec
