// SlotBroadcast property/fuzz tests under genuine Byzantine senders:
// equivocation and silent mid-broadcast drops across many seeds. The two
// properties under attack:
//
//   agreement  — for every (origin, slot), all correct processes that
//                deliver, deliver the *same* bytes, and totality makes
//                delivery all-or-none among correct processes;
//   integrity  — for an honest origin, the delivered bytes are exactly the
//                bytes it broadcast, no matter what the adversary injects.
#include "rbc/slotcast.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/simulation.hpp"

namespace chc::rbc {
namespace {

/// Honest host: broadcasts one byte-string per slot, records deliveries.
class Host : public sim::Process {
 public:
  Host(std::size_t n, std::size_t f, std::vector<Bytes> slot_values)
      : n_(n), f_(f), values_(std::move(slot_values)) {}

  void on_start(sim::Context& ctx) override {
    cast_ = std::make_unique<SlotBroadcast>(
        n_, f_, ctx.self(),
        [this](sim::Context&, sim::ProcessId origin, std::uint32_t slot,
               const Bytes& bytes) {
          delivered_[{origin, slot}] = bytes;
        });
    for (std::uint32_t s = 0; s < values_.size(); ++s) {
      cast_->broadcast(ctx, s, values_[s]);
    }
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    cast_->on_message(ctx, msg);
  }

  const std::map<std::pair<sim::ProcessId, std::uint32_t>, Bytes>&
  delivered() const {
    return delivered_;
  }
  std::uint64_t rejected() const { return cast_->rejected(); }

 private:
  std::size_t n_, f_;
  std::vector<Bytes> values_;
  std::unique_ptr<SlotBroadcast> cast_;
  std::map<std::pair<sim::ProcessId, std::uint32_t>, Bytes> delivered_;
};

/// Equivocating sender: hand-rolls its own INITs, a different byte-string
/// per receiver (worst case: no two receivers agree), across two slots.
/// It also echoes honestly for others so honest traffic still flows.
class EquivocatingSender final : public sim::Process {
 public:
  EquivocatingSender(std::size_t n, std::size_t f) : n_(n), f_(f) {}

  void on_start(sim::Context& ctx) override {
    cast_ = std::make_unique<SlotBroadcast>(
        n_, f_, ctx.self(),
        [](sim::Context&, sim::ProcessId, std::uint32_t, const Bytes&) {});
    for (sim::ProcessId to = 0; to < n_; ++to) {
      if (to == ctx.self()) continue;
      for (std::uint32_t slot = 0; slot < 2; ++slot) {
        ctx.send(to, kTagSlotInit,
                 SlotMsg{ctx.self(), slot,
                         Bytes{std::uint8_t(to), std::uint8_t(slot)}});
      }
    }
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    cast_->on_message(ctx, msg);  // cooperate on everyone else's slots
  }

 private:
  std::size_t n_, f_;
  std::unique_ptr<SlotBroadcast> cast_;
};

/// Silent-drop sender: broadcasts honestly but its outgoing messages stop
/// flowing after `quota` sends (modeled by counting in on-start/echo via a
/// wrapper is overkill here — it simply never participates after INITs to
/// a prefix of the receivers).
class HalfSilentSender final : public sim::Process {
 public:
  HalfSilentSender(std::size_t n, std::size_t cutoff)
      : n_(n), cutoff_(cutoff) {}

  void on_start(sim::Context& ctx) override {
    // INIT reaches only the first `cutoff` other processes, then silence
    // forever (no echoes, no readies — a mid-broadcast Byzantine drop).
    std::size_t sent = 0;
    for (sim::ProcessId to = 0; to < n_ && sent < cutoff_; ++to) {
      if (to == ctx.self()) continue;
      ctx.send(to, kTagSlotInit, SlotMsg{ctx.self(), 0, Bytes{0x5A}});
      ++sent;
    }
  }
  void on_message(sim::Context&, const sim::Message&) override {}

 private:
  std::size_t n_, cutoff_;
};

struct FuzzOutcome {
  std::vector<Host*> honest;
  bool quiescent = false;
};

void check_agreement_and_integrity(const std::vector<Host*>& honest,
                                   std::size_t n_slots_per_honest,
                                   std::uint64_t seed) {
  // Agreement + totality per (origin, slot) across correct processes.
  std::map<std::pair<sim::ProcessId, std::uint32_t>, std::set<Bytes>> seen;
  std::map<std::pair<sim::ProcessId, std::uint32_t>, std::size_t> count;
  for (const Host* h : honest) {
    for (const auto& [key, bytes] : h->delivered()) {
      seen[key].insert(bytes);
      ++count[key];
    }
  }
  for (const auto& [key, values] : seen) {
    EXPECT_EQ(values.size(), 1u)
        << "seed=" << seed << " origin=" << key.first
        << " slot=" << key.second << " split into " << values.size();
    EXPECT_TRUE(count[key] == honest.size())
        << "seed=" << seed << " origin=" << key.first
        << " slot=" << key.second << ": delivered at " << count[key] << "/"
        << honest.size() << " correct processes";
  }
  // Integrity for honest origins: the delivered bytes are the broadcast
  // bytes ({pid, slot} by construction below).
  for (const Host* h : honest) {
    for (const auto& [key, bytes] : h->delivered()) {
      if (key.first >= honest.size()) continue;  // byzantine origin
      ASSERT_LT(key.second, n_slots_per_honest);
      EXPECT_EQ(bytes,
                (Bytes{std::uint8_t(key.first), std::uint8_t(key.second)}))
          << "seed=" << seed;
    }
  }
}

TEST(SlotcastFuzz, EquivocationNeverSplitsAcrossSeeds) {
  const std::size_t n = 4, f = 1, slots = 2;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    sim::Simulation sim(n, seed, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                        {});
    std::vector<Host*> honest;
    for (sim::ProcessId p = 0; p + 1 < n; ++p) {
      std::vector<Bytes> vals;
      for (std::uint32_t s = 0; s < slots; ++s) {
        vals.push_back(Bytes{std::uint8_t(p), std::uint8_t(s)});
      }
      auto h = std::make_unique<Host>(n, f, vals);
      honest.push_back(h.get());
      sim.add_process(std::move(h));
    }
    sim.add_process(std::make_unique<EquivocatingSender>(n, f));
    ASSERT_TRUE(sim.run().quiescent) << "seed=" << seed;
    check_agreement_and_integrity(honest, slots, seed);
    // Honest origins always complete: 3 honest * 2 slots each.
    for (const Host* h : honest) {
      std::size_t honest_deliveries = 0;
      for (const auto& [key, bytes] : h->delivered()) {
        if (key.first < honest.size()) ++honest_deliveries;
      }
      EXPECT_EQ(honest_deliveries, honest.size() * slots)
          << "seed=" << seed;
    }
  }
}

TEST(SlotcastFuzz, SilentDropIsAllOrNothingAcrossSeeds) {
  const std::size_t n = 7, f = 2;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 977);
    const std::size_t cutoff = rng.uniform_int(0, n - 1);
    sim::Simulation sim(n, seed, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                        {});
    std::vector<Host*> honest;
    for (sim::ProcessId p = 0; p + 1 < n; ++p) {
      auto h = std::make_unique<Host>(
          n, f, std::vector<Bytes>{Bytes{std::uint8_t(p), std::uint8_t(0)}});
      honest.push_back(h.get());
      sim.add_process(std::move(h));
    }
    sim.add_process(std::make_unique<HalfSilentSender>(n, cutoff));
    ASSERT_TRUE(sim.run().quiescent) << "seed=" << seed;
    check_agreement_and_integrity(honest, 1, seed);
  }
}

TEST(Slotcast, ValidatesAdversarialEnvelopes) {
  // Malformed inbound traffic (bad type, out-of-range origin/slot,
  // oversized payload, forged INIT in another's name) is counted and
  // dropped; none of it reaches delivery.
  class Attacker final : public sim::Process {
   public:
    void on_start(sim::Context& ctx) override {
      ctx.broadcast_others(kTagSlotInit, std::string("wrong type"));
      ctx.broadcast_others(kTagSlotInit, SlotMsg{99, 0, Bytes{1}});
      ctx.broadcast_others(kTagSlotInit, SlotMsg{ctx.self(), 1u << 30, {1}});
      ctx.broadcast_others(kTagSlotEcho,
                           SlotMsg{ctx.self(), 0, Bytes(1 << 14, 0xFF)});
      // Forged INIT in process 0's name conflicting with its broadcast.
      ctx.broadcast_others(kTagSlotInit, SlotMsg{0, 0, Bytes{0xBA, 0xD0}});
    }
    void on_message(sim::Context&, const sim::Message&) override {}
  };

  const std::size_t n = 4, f = 1;
  sim::Simulation sim(n, 3, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      {});
  std::vector<Host*> honest;
  for (sim::ProcessId p = 0; p + 1 < n; ++p) {
    auto h = std::make_unique<Host>(
        n, f, std::vector<Bytes>{Bytes{std::uint8_t(p), std::uint8_t(0)}});
    honest.push_back(h.get());
    sim.add_process(std::move(h));
  }
  sim.add_process(std::make_unique<Attacker>());
  ASSERT_TRUE(sim.run().quiescent);

  std::uint64_t rejected = 0;
  for (const Host* h : honest) {
    rejected += h->rejected();
    // Integrity: process 0's slot 0 delivers its own bytes, not the forge.
    const auto it = h->delivered().find({0, 0});
    ASSERT_NE(it, h->delivered().end());
    EXPECT_EQ(it->second, (Bytes{0x00, 0x00}));
    // Nothing delivered for the attacker or bogus origins.
    for (const auto& [key, bytes] : h->delivered()) {
      EXPECT_LT(key.first, honest.size());
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST(Slotcast, ContractChecks) {
  EXPECT_THROW(
      SlotBroadcast(3, 1, 0,
                    [](sim::Context&, sim::ProcessId, std::uint32_t,
                       const Bytes&) {}),
      ContractViolation);  // n = 3f without the boundary opt-in
  SlotBroadcast::Options below;
  below.allow_below_bound = true;
  EXPECT_NO_THROW(SlotBroadcast(
      3, 1, 0,
      [](sim::Context&, sim::ProcessId, std::uint32_t, const Bytes&) {},
      below));
}

}  // namespace
}  // namespace chc::rbc
