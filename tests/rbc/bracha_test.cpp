// Reliable-broadcast tests with genuine Byzantine behaviour: equivocating
// senders, forged INITs, spurious READYs and crash faults.
#include "rbc/bracha.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "common/check.hpp"
#include "sim/simulation.hpp"

namespace chc::rbc {
namespace {

/// Honest host: broadcasts its value, records deliveries.
class Honest : public sim::Process {
 public:
  Honest(std::size_t n, std::size_t f, std::optional<geo::Vec> value)
      : n_(n), f_(f), value_(std::move(value)) {}

  void on_start(sim::Context& ctx) override {
    rb_ = std::make_unique<ReliableBroadcast>(
        n_, f_, ctx.self(),
        [this](sim::Context&, sim::ProcessId, const geo::Vec&) {});
    if (value_) rb_->broadcast(ctx, *value_);
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    rb_->on_message(ctx, msg);
  }
  const std::map<sim::ProcessId, geo::Vec>& delivered() const {
    return rb_->delivered();
  }

 protected:
  std::size_t n_, f_;
  std::optional<geo::Vec> value_;
  std::unique_ptr<ReliableBroadcast> rb_;
};

/// Byzantine sender: equivocates — INIT v1 to the first half, v2 to the
/// rest — and otherwise stays silent (no echoes for anyone).
class Equivocator final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    const std::size_t n = ctx.n();
    for (sim::ProcessId to = 0; to < n; ++to) {
      if (to == ctx.self()) continue;
      const geo::Vec v = (to < n / 2) ? geo::Vec{1.0} : geo::Vec{2.0};
      ctx.send(to, kTagInit, BrachaMsg{ctx.self(), v});
    }
  }
  void on_message(sim::Context&, const sim::Message&) override {}
};

/// Byzantine process that forges an INIT pretending to be process 0 and
/// floods READYs for a bogus value.
class Forger final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    ctx.broadcast_others(kTagInit, BrachaMsg{0, geo::Vec{99.0}});
    ctx.broadcast_others(kTagReady, BrachaMsg{0, geo::Vec{99.0}});
  }
  void on_message(sim::Context&, const sim::Message&) override {}
};

struct Run {
  std::vector<Honest*> honest;  // indexed by pid; nullptr for byzantine
  std::unique_ptr<sim::Simulation> sim;
};

TEST(Bracha, AllHonestAllDeliverAll) {
  const std::size_t n = 4, f = 1;
  sim::Simulation sim(n, 1, std::make_unique<sim::UniformDelay>(0.1, 1.0), {});
  std::vector<Honest*> hosts;
  for (sim::ProcessId p = 0; p < n; ++p) {
    auto h = std::make_unique<Honest>(n, f, geo::Vec{double(p)});
    hosts.push_back(h.get());
    sim.add_process(std::move(h));
  }
  EXPECT_TRUE(sim.run().quiescent);
  for (const Honest* h : hosts) {
    ASSERT_EQ(h->delivered().size(), n);
    for (sim::ProcessId p = 0; p < n; ++p) {
      EXPECT_DOUBLE_EQ(h->delivered().at(p)[0], double(p));
    }
  }
}

TEST(Bracha, EquivocatorNeverSplitsCorrectProcesses) {
  // Agreement: across seeds, correct processes deliver the same value for
  // the equivocator's slot — or none deliver at all.
  const std::size_t n = 7, f = 2;  // Byzantine process 6 (plus 1 spare fault)
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Simulation sim(n, seed, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                        {});
    std::vector<Honest*> hosts;
    for (sim::ProcessId p = 0; p + 1 < n; ++p) {
      auto h = std::make_unique<Honest>(n, f, geo::Vec{double(p)});
      hosts.push_back(h.get());
      sim.add_process(std::move(h));
    }
    sim.add_process(std::make_unique<Equivocator>());
    EXPECT_TRUE(sim.run().quiescent);

    std::optional<double> agreed;
    for (const Honest* h : hosts) {
      const auto it = h->delivered().find(6);
      if (it == h->delivered().end()) continue;
      if (!agreed) {
        agreed = it->second[0];
      } else {
        EXPECT_DOUBLE_EQ(*agreed, it->second[0]) << "seed " << seed;
      }
    }
    // Totality: all-or-none across correct processes.
    std::size_t delivered_count = 0;
    for (const Honest* h : hosts) {
      delivered_count += h->delivered().count(6);
    }
    EXPECT_TRUE(delivered_count == 0 || delivered_count == hosts.size())
        << "seed " << seed << ": " << delivered_count;
    // Honest broadcasts always go through.
    for (const Honest* h : hosts) {
      for (sim::ProcessId p = 0; p + 1 < n; ++p) {
        EXPECT_TRUE(h->delivered().count(p)) << "seed " << seed;
      }
    }
  }
}

/// Byzantine sender that equivocates with a LOPSIDED split: enough correct
/// processes echo v1 that it reaches the echo quorum and gets delivered.
class LopsidedEquivocator final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    const std::size_t n = ctx.n();
    for (sim::ProcessId to = 0; to < n; ++to) {
      if (to == ctx.self()) continue;
      const geo::Vec v = (to == 0) ? geo::Vec{2.0} : geo::Vec{1.0};
      ctx.send(to, kTagInit, BrachaMsg{ctx.self(), v});
    }
  }
  void on_message(sim::Context&, const sim::Message&) override {}
};

TEST(Bracha, LopsidedEquivocationDeliversOneValueEverywhere) {
  // n = 7, f = 2: five of six correct processes echo v1 = 1.0 (echo quorum
  // n-f = 5 reached); all correct processes must deliver exactly 1.0 for
  // the Byzantine slot — including process 0, which was told 2.0.
  const std::size_t n = 7, f = 2;
  std::size_t delivered_runs = 0;
  for (std::uint64_t seed = 40; seed < 50; ++seed) {
    sim::Simulation sim(n, seed, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                        {});
    std::vector<Honest*> hosts;
    for (sim::ProcessId p = 0; p + 1 < n; ++p) {
      auto h = std::make_unique<Honest>(n, f, geo::Vec{double(p)});
      hosts.push_back(h.get());
      sim.add_process(std::move(h));
    }
    sim.add_process(std::make_unique<LopsidedEquivocator>());
    EXPECT_TRUE(sim.run().quiescent);
    std::size_t got = 0;
    for (const Honest* h : hosts) {
      const auto it = h->delivered().find(6);
      if (it == h->delivered().end()) continue;
      ++got;
      EXPECT_DOUBLE_EQ(it->second[0], 1.0) << "seed " << seed;
    }
    EXPECT_TRUE(got == 0 || got == hosts.size());
    if (got == hosts.size()) ++delivered_runs;
  }
  // The lopsided split reaches quorum in (essentially) every schedule.
  EXPECT_GT(delivered_runs, 5u);
}

TEST(Bracha, ForgedInitAndReadyFloodIgnored) {
  // Process 3 forges INIT/(READY burst) in process 0's name with value 99;
  // process 0 honestly broadcasts 0. No correct process may deliver 99.
  const std::size_t n = 4, f = 1;
  sim::Simulation sim(n, 5, std::make_unique<sim::UniformDelay>(0.1, 1.0), {});
  std::vector<Honest*> hosts;
  for (sim::ProcessId p = 0; p < 3; ++p) {
    auto h = std::make_unique<Honest>(n, f, geo::Vec{double(p)});
    hosts.push_back(h.get());
    sim.add_process(std::move(h));
  }
  sim.add_process(std::make_unique<Forger>());
  EXPECT_TRUE(sim.run().quiescent);
  for (const Honest* h : hosts) {
    ASSERT_TRUE(h->delivered().count(0));
    EXPECT_DOUBLE_EQ(h->delivered().at(0)[0], 0.0);
  }
}

TEST(Bracha, CrashedSenderAllOrNothing) {
  // Sender crashes mid-INIT-broadcast: totality demands all correct
  // processes deliver its value or none do.
  const std::size_t n = 4, f = 1;
  for (std::size_t cut = 0; cut <= 3; ++cut) {
    sim::CrashSchedule cs;
    cs.set(0, sim::CrashPlan::after(cut));
    sim::Simulation sim(n, 11 + cut,
                        std::make_unique<sim::UniformDelay>(0.1, 1.0), cs);
    std::vector<Honest*> hosts;
    for (sim::ProcessId p = 0; p < n; ++p) {
      auto h = std::make_unique<Honest>(n, f, geo::Vec{double(p)});
      if (p != 0) hosts.push_back(h.get());
      sim.add_process(std::move(h));
    }
    EXPECT_TRUE(sim.run().quiescent);
    std::size_t got = 0;
    for (const Honest* h : hosts) got += h->delivered().count(0);
    EXPECT_TRUE(got == 0 || got == hosts.size())
        << "cut=" << cut << " got=" << got;
  }
}

TEST(Bracha, RejectsBadConfigAndDoubleBroadcast) {
  EXPECT_THROW(ReliableBroadcast(3, 1, 0,
                                 [](sim::Context&, sim::ProcessId,
                                    const geo::Vec&) {}),
               ContractViolation);  // n < 3f+1
  class Doubler final : public sim::Process {
   public:
    void on_start(sim::Context& ctx) override {
      ReliableBroadcast rb(
          4, 1, ctx.self(),
          [](sim::Context&, sim::ProcessId, const geo::Vec&) {});
      rb.broadcast(ctx, geo::Vec{1.0});
      EXPECT_THROW(rb.broadcast(ctx, geo::Vec{2.0}), ContractViolation);
    }
    void on_message(sim::Context&, const sim::Message&) override {}
  };
  sim::Simulation sim(4, 1, std::make_unique<sim::FixedDelay>(1.0), {});
  for (int i = 0; i < 4; ++i) sim.add_process(std::make_unique<Doubler>());
  sim.run(100000);
}

}  // namespace
}  // namespace chc::rbc
