// Randomized adversary fuzzer: Algorithm CC under sampled (drop rate, dup
// rate, reorder rate, crash style, delay regime, seed) tuples.
//
// With the reliable-channel shim installed, every sampled lossy execution
// must terminate and earn the full certificate (validity + eps-agreement),
// on the discrete-event simulator and on the threaded runtime. With the
// shim disabled, the control group shows the injector genuinely bites:
// lossy executions fail to decide.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/lossy.hpp"
#include "core/process_cc.hpp"
#include "geometry/polytope.hpp"
#include "net/faulty_link.hpp"
#include "net/reliable_channel.hpp"
#include "rt/runtime.hpp"

namespace chc::net {
namespace {

struct FuzzCase {
  double drop = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
  core::CrashStyle crash = core::CrashStyle::kNone;
  core::DelayRegime delay = core::DelayRegime::kUniform;
  std::uint64_t seed = 0;
};

/// Samples one adversary tuple. Rates stay inside the acceptance envelope
/// (drop <= 0.3, dup <= 0.1) and the fair-lossy requirement (drop < 1).
FuzzCase sample_case(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase c;
  c.seed = seed;
  c.drop = rng.uniform(0.02, 0.30);
  c.dup = rng.uniform(0.0, 0.10);
  c.reorder = rng.uniform(0.0, 0.20);
  static constexpr core::CrashStyle kStyles[] = {
      core::CrashStyle::kNone, core::CrashStyle::kEarly,
      core::CrashStyle::kMidBroadcast, core::CrashStyle::kLate};
  c.crash = kStyles[rng.uniform_int(0, 3)];
  c.delay = rng.bernoulli(0.5) ? core::DelayRegime::kUniform
                               : core::DelayRegime::kExponential;
  return c;
}

std::string describe(const FuzzCase& c) {
  std::ostringstream os;
  os << "seed=" << c.seed << " drop=" << c.drop << " dup=" << c.dup
     << " reorder=" << c.reorder
     << " crash=" << static_cast<int>(c.crash)
     << " delay=" << static_cast<int>(c.delay);
  return os.str();
}

core::LossyRunConfig make_config(const FuzzCase& c, bool reliable) {
  core::LossyRunConfig lc;
  lc.base.cc = core::CCConfig{.n = 5, .f = 1, .d = 2, .eps = 0.15};
  lc.base.pattern = core::InputPattern::kUniform;
  lc.base.crash_style = c.crash;
  lc.base.delay = c.delay;
  lc.base.seed = c.seed;
  lc.policy = NetworkPolicy::lossy(c.drop, c.dup, c.reorder);
  lc.reliable = reliable;
  return lc;
}

TEST(AdversaryFuzz, ShimmedCcSurvivesSampledAdversaries) {
  constexpr int kCases = 60;  // acceptance floor is 50 sampled tuples
  std::uint64_t total_drops = 0;
  std::uint64_t total_retransmits = 0;
  for (int i = 0; i < kCases; ++i) {
    const FuzzCase c = sample_case(5000 + static_cast<std::uint64_t>(i));
    const auto out = core::run_cc_lossy(make_config(c, /*reliable=*/true));
    ASSERT_TRUE(out.quiescent) << describe(c);
    EXPECT_TRUE(out.cert.all_decided) << describe(c);
    EXPECT_TRUE(out.cert.validity) << describe(c);
    EXPECT_TRUE(out.cert.agreement)
        << describe(c) << " d_H=" << out.cert.max_pairwise_hausdorff;
    total_drops += out.stats.net_dropped;
    total_retransmits += out.stats.retransmits;
  }
  // The adversary really was active, and the recovery layer really worked.
  EXPECT_GT(total_drops, 0u);
  EXPECT_GT(total_retransmits, 0u);
}

TEST(AdversaryFuzz, UnshimmedControlGroupFailsToDecide) {
  // Same sampled adversaries, shim disabled: injected faults hit the
  // protocol directly, so executions demonstrably violate delivery. Two
  // symptoms count: a quorum wait that never completes (dropped message,
  // nobody retransmits), and CCProcess's reliable-channel invariant firing
  // on a duplicated round message.
  int violated = 0;
  for (int i = 0; i < 10; ++i) {
    const FuzzCase c = sample_case(5000 + static_cast<std::uint64_t>(i));
    auto lc = make_config(c, /*reliable=*/false);
    lc.max_events = 2'000'000;  // lossy runs quiesce early; cap regardless
    try {
      const auto out = core::run_cc_lossy(lc);
      EXPECT_GT(out.stats.net_dropped, 0u) << describe(c);
      if (!out.cert.all_decided) ++violated;
    } catch (const ContractViolation&) {
      ++violated;  // duplicate delivery reached the protocol
    }
  }
  EXPECT_GE(violated, 1) << "no unshimmed lossy execution showed a failure";
}

TEST(AdversaryFuzz, ShimmedCcOnThreadedRuntime) {
  // A smaller sweep on real threads: CC processes wrapped in the shim, the
  // injector dropping/duplicating underneath, plus a mid-protocol crash of
  // the incorrect-input process. Decisions are pulled out through the
  // shims and checked for validity and eps-agreement directly.
  const core::CCConfig cfg{.n = 5, .f = 1, .d = 2, .eps = 0.15};
  const std::vector<geo::Vec> inputs = {
      geo::Vec{0.0, 0.0}, geo::Vec{1.0, 0.0}, geo::Vec{0.0, 1.0},
      geo::Vec{1.0, 1.0}, geo::Vec{1.8, 1.9}};  // process 4: incorrect
  const geo::Polytope correct_hull = geo::Polytope::from_points(
      {inputs[0], inputs[1], inputs[2], inputs[3]});

  for (std::uint64_t seed : {101u, 202u, 303u}) {
    sim::CrashSchedule cs;
    cs.set(4, sim::CrashPlan::after(40));  // counts wire transmissions
    rt::ThreadedRuntime rt(cfg.n, seed,
                           std::make_unique<sim::UniformDelay>(0.05, 0.2),
                           cs);
    rt.set_fault_model(
        std::make_unique<FaultyLinkModel>(NetworkPolicy::lossy(0.2, 0.05)));
    for (std::size_t p = 0; p < cfg.n; ++p) {
      rt.add_process(std::make_unique<ReliableChannel>(
          std::make_unique<core::CCProcess>(cfg, inputs[p], nullptr),
          ReliableParams{}));
    }
    rt.start();
    const bool done = rt.run_until(
        [](rt::ThreadedRuntime& r) {
          for (std::size_t p = 0; p < 4; ++p) {
            const bool decided = r.with_process(p, [](sim::Process& proc) {
              return static_cast<core::CCProcess&>(
                         static_cast<ReliableChannel&>(proc).inner())
                  .decision()
                  .has_value();
            });
            if (!decided) return false;
          }
          return true;
        },
        60.0);
    rt.stop();
    ASSERT_TRUE(done) << "seed " << seed
                      << ": processes did not decide over the lossy network";
    EXPECT_GT(rt.messages_lost(), 0u) << "seed " << seed;

    std::vector<geo::Polytope> decisions;
    for (std::size_t p = 0; p < 4; ++p) {
      decisions.push_back(rt.with_process(p, [](sim::Process& proc) {
        return *static_cast<core::CCProcess&>(
                    static_cast<ReliableChannel&>(proc).inner())
                    .decision();
      }));
    }
    for (const auto& dec : decisions) {
      EXPECT_TRUE(correct_hull.contains(dec, 1e-6)) << "seed " << seed;
    }
    for (std::size_t a = 0; a < decisions.size(); ++a) {
      for (std::size_t b = a + 1; b < decisions.size(); ++b) {
        EXPECT_LT(geo::hausdorff(decisions[a], decisions[b]), cfg.eps)
            << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace chc::net
