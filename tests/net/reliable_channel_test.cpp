// Reliable-channel shim tests: exactly-once FIFO delivery restored over
// drop/dup/reorder faults, retransmission with backoff, crashed-peer
// abandonment (quiescence), passthrough with no faults, and the guard
// rails on reserved tags/tokens.
#include "net/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "net/faulty_link.hpp"
#include "rbc/bracha.hpp"
#include "sim/simulation.hpp"

namespace chc::net {
namespace {

constexpr int kTagData = 2;

/// Sends `burst` numbered messages to `target` on start; records deliveries.
class Burst final : public sim::Process {
 public:
  struct Log {
    std::vector<std::pair<sim::ProcessId, int>> deliveries;
  };

  Burst(Log* log, sim::ProcessId target, int burst)
      : log_(log), target_(target), burst_(burst) {}

  void on_start(sim::Context& ctx) override {
    for (int i = 1; i <= burst_; ++i) ctx.send(target_, kTagData, int{i});
  }
  void on_message(sim::Context&, const sim::Message& msg) override {
    log_->deliveries.emplace_back(msg.from, std::any_cast<int>(msg.payload));
  }

 private:
  Log* log_;
  sim::ProcessId target_;
  int burst_;
};

struct ShimRun {
  sim::RunResult rr;
  ShimStats shims;
};

ShimRun run_shimmed_burst(const NetworkPolicy& policy, std::uint64_t seed,
                          int burst, Burst::Log* log,
                          ReliableParams params = {}) {
  sim::Simulation sim(2, seed, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      {});
  if (policy.enabled()) {
    sim.set_fault_model(std::make_unique<FaultyLinkModel>(policy));
  }
  std::vector<ReliableChannel*> shims;
  auto add = [&](std::unique_ptr<sim::Process> p) {
    auto shim = std::make_unique<ReliableChannel>(std::move(p), params);
    shims.push_back(shim.get());
    sim.add_process(std::move(shim));
  };
  add(std::make_unique<Burst>(log, 1, burst));
  add(std::make_unique<Burst>(log, 0, 0));
  ShimRun out;
  out.rr = sim.run();
  for (const auto* s : shims) out.shims += s->stats();
  return out;
}

TEST(ReliableChannel, ExactlyOnceFifoOverLossyNetwork) {
  Burst::Log log;
  const auto out = run_shimmed_burst(NetworkPolicy::lossy(0.3, 0.1, 0.2),
                                     21, 200, &log);
  EXPECT_TRUE(out.rr.quiescent);
  ASSERT_EQ(log.deliveries.size(), 200u) << "delivery not exactly-once";
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(log.deliveries[static_cast<std::size_t>(i)].second, i + 1)
        << "FIFO violated at position " << i;
  }
  EXPECT_GT(out.rr.stats.net_dropped, 0u) << "injector never bit";
  EXPECT_GT(out.shims.retransmits, 0u);
  EXPECT_EQ(out.shims.retransmit_by_tag.at(kTagData), out.shims.retransmits);
  EXPECT_EQ(out.shims.channels_abandoned, 0u);
}

TEST(ReliableChannel, WithoutShimLossyNetworkViolatesDelivery) {
  // The control experiment: same network, no recovery layer — delivery is
  // demonstrably violated (messages lost and/or duplicated).
  Burst::Log log;
  sim::Simulation sim(2, 21, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      {});
  sim.set_fault_model(std::make_unique<FaultyLinkModel>(
      NetworkPolicy::lossy(0.3, 0.1, 0.2)));
  sim.add_process(std::make_unique<Burst>(&log, 1, 200));
  sim.add_process(std::make_unique<Burst>(&log, 0, 0));
  const auto rr = sim.run();
  EXPECT_TRUE(rr.quiescent);
  EXPECT_NE(log.deliveries.size(), 200u);
  EXPECT_GT(rr.stats.net_dropped, 0u);
}

TEST(ReliableChannel, PassthroughWithoutFaults) {
  // Clean network: exactly-once FIFO with zero recovery work, and the run
  // still quiesces (retransmit ticks stop once everything is acked).
  Burst::Log log;
  const auto out = run_shimmed_burst(NetworkPolicy{}, 3, 50, &log);
  EXPECT_TRUE(out.rr.quiescent);
  ASSERT_EQ(log.deliveries.size(), 50u);
  EXPECT_EQ(out.shims.retransmits, 0u);
  EXPECT_EQ(out.shims.dups_suppressed, 0u);
  EXPECT_EQ(out.shims.delivered, 50u);
}

TEST(ReliableChannel, HeavyLossStillRecovers) {
  Burst::Log log;
  const auto out =
      run_shimmed_burst(NetworkPolicy::lossy(0.5, 0.2, 0.3), 99, 60, &log);
  EXPECT_TRUE(out.rr.quiescent);
  ASSERT_EQ(log.deliveries.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(log.deliveries[static_cast<std::size_t>(i)].second, i + 1);
  }
  EXPECT_GT(out.shims.dups_suppressed + out.shims.buffered_out_of_order, 0u);
}

TEST(ReliableChannel, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    Burst::Log log;
    const auto out = run_shimmed_burst(NetworkPolicy::lossy(0.3, 0.1, 0.1),
                                       seed, 80, &log);
    return std::make_pair(out.shims.retransmits, out.rr.stats.end_time);
  };
  const auto a = run(31);
  const auto b = run(31);
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(ReliableChannel, CrashedPeerIsAbandonedAndRunQuiesces) {
  Burst::Log log;
  sim::CrashSchedule cs;
  cs.set(1, sim::CrashPlan::at(0.05));  // receiver dies before any delivery
  sim::Simulation sim(2, 13, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      cs);
  sim.set_fault_model(
      std::make_unique<FaultyLinkModel>(NetworkPolicy::lossy(0.2)));
  ReliableParams fast;
  fast.rto = 0.5;
  fast.rto_max = 2.0;
  fast.max_retries = 6;
  auto shim = std::make_unique<ReliableChannel>(
      std::make_unique<Burst>(&log, 1, 5), fast);
  const ReliableChannel* sender = shim.get();
  sim.add_process(std::move(shim));
  sim.add_process(std::make_unique<ReliableChannel>(
      std::make_unique<Burst>(&log, 0, 0), fast));
  const auto rr = sim.run(200'000);
  EXPECT_TRUE(rr.quiescent) << "retransmission to a dead peer never ended";
  EXPECT_EQ(sender->stats().channels_abandoned, 1u);
  EXPECT_TRUE(log.deliveries.empty());
}

TEST(ReliableChannel, BrachaRunsUnchangedOverLossyLinks) {
  // The Bracha reliable-broadcast layer, wrapped unmodified: every host
  // delivers every honest value despite 25% drops.
  class Host final : public sim::Process {
   public:
    Host(std::size_t n, std::size_t f) : n_(n), f_(f) {}
    void on_start(sim::Context& ctx) override {
      rb_ = std::make_unique<rbc::ReliableBroadcast>(
          n_, f_, ctx.self(),
          [](sim::Context&, sim::ProcessId, const geo::Vec&) {});
      rb_->broadcast(ctx, geo::Vec{static_cast<double>(ctx.self())});
    }
    void on_message(sim::Context& ctx, const sim::Message& msg) override {
      rb_->on_message(ctx, msg);
    }
    std::size_t delivered_count() const { return rb_->delivered().size(); }

   private:
    std::size_t n_, f_;
    std::unique_ptr<rbc::ReliableBroadcast> rb_;
  };

  const std::size_t n = 4, f = 1;
  sim::Simulation sim(n, 17, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      {});
  sim.set_fault_model(
      std::make_unique<FaultyLinkModel>(NetworkPolicy::lossy(0.25)));
  std::vector<ReliableChannel*> shims;
  for (sim::ProcessId p = 0; p < n; ++p) {
    auto shim = std::make_unique<ReliableChannel>(
        std::make_unique<Host>(n, f), ReliableParams{});
    shims.push_back(shim.get());
    sim.add_process(std::move(shim));
  }
  const auto rr = sim.run();
  EXPECT_TRUE(rr.quiescent);
  for (const auto* shim : shims) {
    EXPECT_EQ(static_cast<const Host&>(shim->inner()).delivered_count(), n);
  }
}

TEST(ReliableChannel, PeerRestartTriggersEpochReset) {
  // The receiver crash-recovers at t=5 with a fresh shim (epoch 1, empty
  // receive stream). The sender must detect the newer epoch, reset the
  // channel (renumber + resend the unacked window) and get both the unacked
  // remainder and a post-recovery burst through exactly once, in order.
  class TwoBursts final : public sim::Process {
   public:
    explicit TwoBursts(Burst::Log* log) : log_(log) {}
    void on_start(sim::Context& ctx) override {
      for (int i = 1; i <= 5; ++i) ctx.send(1, kTagData, int{i});
      ctx.set_timer(10.0, 1);
    }
    void on_message(sim::Context&, const sim::Message& msg) override {
      log_->deliveries.emplace_back(msg.from,
                                    std::any_cast<int>(msg.payload));
    }
    void on_timer(sim::Context& ctx, int) override {
      for (int i = 6; i <= 10; ++i) ctx.send(1, kTagData, int{i});
    }

   private:
    Burst::Log* log_;
  };

  Burst::Log log;
  sim::CrashSchedule cs;
  cs.set(1, sim::CrashPlan::window(0.5, 5.0));
  sim::Simulation sim(2, 37, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      cs);
  auto sender = std::make_unique<ReliableChannel>(
      std::make_unique<TwoBursts>(&log), ReliableParams{});
  const ReliableChannel* sender_shim = sender.get();
  sim.add_process(std::move(sender));
  sim.add_process(std::make_unique<ReliableChannel>(
      std::make_unique<Burst>(&log, 0, 0), ReliableParams{}));
  const ReliableChannel* recovered_shim = nullptr;
  sim.set_process_factory([&](sim::ProcessId, std::size_t incarnation,
                              std::unique_ptr<sim::Process>)
                              -> std::unique_ptr<sim::Process> {
    auto shim = std::make_unique<ReliableChannel>(
        std::make_unique<Burst>(&log, 0, 0), ReliableParams{}, nullptr,
        static_cast<std::uint32_t>(incarnation));
    recovered_shim = shim.get();
    return shim;
  });
  const auto rr = sim.run();
  EXPECT_TRUE(rr.quiescent);
  ASSERT_NE(recovered_shim, nullptr);
  EXPECT_EQ(recovered_shim->epoch(), 1u);
  EXPECT_GE(sender_shim->stats().channel_resets, 1u);
  // Exactly once, in order, across the restart: 1..10.
  ASSERT_EQ(log.deliveries.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(log.deliveries[static_cast<std::size_t>(i)].second, i + 1)
        << "delivery order broken across the epoch reset at " << i;
  }
  EXPECT_EQ(sender_shim->current_backoff(), 0.0);  // nothing outstanding
}

TEST(ReliableChannel, ReservedTagAndTokenRejected) {
  class BadTag final : public sim::Process {
   public:
    void on_start(sim::Context& ctx) override {
      ctx.send(0, kTagRelData, int{1});
    }
    void on_message(sim::Context&, const sim::Message&) override {}
  };
  sim::Simulation sim(1, 1, std::make_unique<sim::FixedDelay>(1.0), {});
  sim.add_process(std::make_unique<ReliableChannel>(
      std::make_unique<BadTag>(), ReliableParams{}));
  EXPECT_THROW(sim.run(), ContractViolation);

  class BadToken final : public sim::Process {
   public:
    void on_start(sim::Context& ctx) override {
      ctx.set_timer(1.0, kRelTickToken);
    }
    void on_message(sim::Context&, const sim::Message&) override {}
  };
  sim::Simulation sim2(1, 1, std::make_unique<sim::FixedDelay>(1.0), {});
  sim2.add_process(std::make_unique<ReliableChannel>(
      std::make_unique<BadToken>(), ReliableParams{}));
  EXPECT_THROW(sim2.run(), ContractViolation);
}

TEST(ReliableChannel, InvalidParamsRejected) {
  auto inner = [] { return std::make_unique<Burst>(nullptr, 0, 0); };
  ReliableParams p;
  p.rto = 0.0;
  EXPECT_THROW(ReliableChannel(inner(), p), ContractViolation);
  p = {};
  p.backoff = 0.5;
  EXPECT_THROW(ReliableChannel(inner(), p), ContractViolation);
  p = {};
  p.rto_max = 0.1;
  EXPECT_THROW(ReliableChannel(inner(), p), ContractViolation);
  p = {};
  p.jitter = 1.0;
  EXPECT_THROW(ReliableChannel(inner(), p), ContractViolation);
  EXPECT_THROW(ReliableChannel(nullptr, ReliableParams{}),
               ContractViolation);
}

}  // namespace
}  // namespace chc::net
