// Fault-injection layer tests: seeded determinism, configured rates
// approximately realized, per-channel overrides, FIFO-breaking reordering,
// and stat accounting on both runtimes.
#include "net/faulty_link.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "rt/runtime.hpp"
#include "sim/simulation.hpp"

namespace chc::net {
namespace {

constexpr int kTagData = 2;

/// Sends `burst` numbered messages to `target` on start; records deliveries.
class Burst final : public sim::Process {
 public:
  struct Log {
    std::vector<std::pair<sim::ProcessId, int>> deliveries;
  };

  Burst(Log* log, sim::ProcessId target, int burst)
      : log_(log), target_(target), burst_(burst) {}

  void on_start(sim::Context& ctx) override {
    for (int i = 1; i <= burst_; ++i) ctx.send(target_, kTagData, int{i});
  }
  void on_message(sim::Context&, const sim::Message& msg) override {
    log_->deliveries.emplace_back(msg.from, std::any_cast<int>(msg.payload));
  }

 private:
  Log* log_;
  sim::ProcessId target_;
  int burst_;
};

sim::RunResult run_burst(const NetworkPolicy& policy, std::uint64_t seed,
                         int burst, Burst::Log* log) {
  sim::Simulation sim(2, seed, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      {});
  sim.set_fault_model(std::make_unique<FaultyLinkModel>(policy));
  sim.add_process(std::make_unique<Burst>(log, 1, burst));
  sim.add_process(std::make_unique<Burst>(log, 0, 0));
  return sim.run();
}

TEST(FaultyLink, DropRateApproximatelyRealized) {
  Burst::Log log;
  const auto rr = run_burst(NetworkPolicy::lossy(0.3), 42, 1000, &log);
  EXPECT_TRUE(rr.quiescent);
  EXPECT_EQ(rr.stats.messages_sent, 1000u);
  // 3-sigma band around 300 expected drops.
  EXPECT_GT(rr.stats.net_dropped, 250u);
  EXPECT_LT(rr.stats.net_dropped, 350u);
  EXPECT_EQ(rr.stats.messages_delivered,
            rr.stats.messages_sent - rr.stats.net_dropped);
  EXPECT_EQ(rr.stats.dropped_by_tag.at(kTagData), rr.stats.net_dropped);
  EXPECT_EQ(log.deliveries.size(), rr.stats.messages_delivered);
}

TEST(FaultyLink, DuplicatesDeliverExtraCopies) {
  Burst::Log log;
  const auto rr = run_burst(NetworkPolicy::lossy(0.0, 0.5), 43, 500, &log);
  EXPECT_GT(rr.stats.net_duplicated, 180u);
  EXPECT_LT(rr.stats.net_duplicated, 320u);
  EXPECT_EQ(rr.stats.messages_delivered,
            rr.stats.messages_sent + rr.stats.net_duplicated);
  EXPECT_EQ(rr.stats.duplicated_by_tag.at(kTagData),
            rr.stats.net_duplicated);
  EXPECT_EQ(rr.stats.net_dropped, 0u);
}

TEST(FaultyLink, ReorderingBreaksFifo) {
  Burst::Log log;
  const auto rr = run_burst(NetworkPolicy::lossy(0.0, 0.0, 0.5), 44, 200,
                            &log);
  EXPECT_GT(rr.stats.net_reordered, 0u);
  ASSERT_EQ(log.deliveries.size(), 200u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < log.deliveries.size(); ++i) {
    if (log.deliveries[i].second < log.deliveries[i - 1].second) {
      out_of_order = true;
      break;
    }
  }
  EXPECT_TRUE(out_of_order) << "reordering injected but FIFO survived";
}

TEST(FaultyLink, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    Burst::Log log;
    const auto rr =
        run_burst(NetworkPolicy::lossy(0.25, 0.1, 0.1), seed, 300, &log);
    return std::make_pair(log.deliveries, rr.stats.net_dropped);
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run(8);
  EXPECT_NE(a.first, c.first);  // different seed, different fault pattern
}

TEST(FaultyLink, PerChannelOverridesApply) {
  // Only channel 0->1 is lossy; 0->2 stays clean.
  NetworkPolicy policy;
  policy.set_channel(0, 1, LinkFaults(0.5, 0.0, 0.0));
  std::vector<Burst::Log> logs(3);

  sim::Simulation sim(3, 5, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      {});
  sim.set_fault_model(std::make_unique<FaultyLinkModel>(policy));
  // Process 0 bursts to 1; a second burst goes to 2 via a dedicated sender
  // class reusing Burst with a different target.
  class TwoTargets final : public sim::Process {
   public:
    void on_start(sim::Context& ctx) override {
      for (int i = 1; i <= 200; ++i) {
        ctx.send(1, kTagData, int{i});
        ctx.send(2, kTagData, int{i});
      }
    }
    void on_message(sim::Context&, const sim::Message&) override {}
  };
  sim.add_process(std::make_unique<TwoTargets>());
  sim.add_process(std::make_unique<Burst>(&logs[1], 0, 0));
  sim.add_process(std::make_unique<Burst>(&logs[2], 0, 0));
  sim.run();
  EXPECT_LT(logs[1].deliveries.size(), 160u);   // lossy channel bit
  EXPECT_EQ(logs[2].deliveries.size(), 200u);   // clean channel intact
}

TEST(FaultyLink, InvalidRatesRejected) {
  EXPECT_THROW(FaultyLinkModel(NetworkPolicy::lossy(1.0)),
               ContractViolation);  // not fair-lossy
  NetworkPolicy bad;
  bad.link.reorder_delay_min = 2.0;
  bad.link.reorder_delay_max = 1.0;
  EXPECT_THROW(FaultyLinkModel{bad}, ContractViolation);
}

TEST(ChannelPolicy, ConstructorClampsAndValidates) {
  // Rates outside [0, 1] are clamped at construction.
  const ChannelPolicy clamped(-0.1, 1.5, 0.3);
  EXPECT_EQ(clamped.drop_rate, 0.0);
  EXPECT_EQ(clamped.dup_rate, 1.0);
  EXPECT_EQ(clamped.reorder_rate, 0.3);
  // NetworkPolicy::lossy routes through the same constructor.
  EXPECT_EQ(NetworkPolicy::lossy(-0.1).link.drop_rate, 0.0);
  EXPECT_EQ(NetworkPolicy::lossy(0.0, 1.5).link.dup_rate, 1.0);
  // The reorder-delay range is validated once, at construction.
  EXPECT_THROW(ChannelPolicy(0.1, 0.0, 0.0, 2.0, 1.0), ContractViolation);
  EXPECT_THROW(ChannelPolicy(0.1, 0.0, 0.0, 0.0, 1.0), ContractViolation);
  const ChannelPolicy ok(0.1, 0.0, 0.0, 0.5, 0.5);
  EXPECT_EQ(ok.reorder_delay_min, ok.reorder_delay_max);
}

TEST(PolicySchedule, PhasesActivateByTime) {
  PolicySchedule sched;
  sched.add(0.0, NetworkPolicy::lossy(0.1));
  NetworkPolicy cut;
  cut.set_channel(0, 1, ChannelPolicy(1.0, 0.0, 0.0));
  sched.add(5.0, cut);
  sched.add(12.0, NetworkPolicy{});
  EXPECT_EQ(sched.active(0.0).link.drop_rate, 0.1);
  EXPECT_EQ(sched.active(4.999).link.drop_rate, 0.1);
  EXPECT_EQ(sched.active(5.0).for_channel(0, 1).drop_rate, 1.0);
  EXPECT_EQ(sched.active(5.0).for_channel(1, 0).drop_rate, 0.0);
  EXPECT_FALSE(sched.active(12.0).enabled());
  // First phase must start at 0; times must strictly ascend.
  PolicySchedule bad;
  EXPECT_THROW(bad.add(1.0, NetworkPolicy{}), ContractViolation);
  bad.add(0.0, NetworkPolicy{});
  EXPECT_THROW(bad.add(0.0, NetworkPolicy{}), ContractViolation);
}

TEST(FaultyLink, ScheduledPartitionDropsThenHeals) {
  // Partitioned phase (drop 1.0 on 0->1) from t=0 to t=1000, then heal.
  // The schedule constructor accepts full drop; the burst falls in the
  // partitioned window so nothing on 0->1 gets through.
  PolicySchedule sched;
  NetworkPolicy cut;
  cut.set_channel(0, 1, ChannelPolicy(1.0, 0.0, 0.0));
  sched.add(0.0, cut);
  sched.add(1000.0, NetworkPolicy{});
  Burst::Log log;
  sim::Simulation sim(2, 21, std::make_unique<sim::UniformDelay>(0.1, 1.0),
                      {});
  sim.set_fault_model(std::make_unique<FaultyLinkModel>(sched));
  sim.add_process(std::make_unique<Burst>(&log, 1, 50));
  sim.add_process(std::make_unique<Burst>(&log, 0, 0));
  const auto rr = sim.run();
  EXPECT_EQ(log.deliveries.size(), 0u);
  EXPECT_EQ(rr.stats.net_dropped, 50u);
  // A uniform drop-1.0 policy stays rejected outside a schedule.
  EXPECT_THROW(FaultyLinkModel(NetworkPolicy::lossy(1.0)),
               ContractViolation);
}

TEST(FaultyLink, PolicyEnabledDetection) {
  EXPECT_FALSE(NetworkPolicy{}.enabled());
  EXPECT_TRUE(NetworkPolicy::lossy(0.1).enabled());
  NetworkPolicy p;
  p.set_channel(1, 2, LinkFaults(0.0, 0.2, 0.0));
  EXPECT_TRUE(p.enabled());
}

TEST(FaultyLink, ThreadedRuntimeCountsInjectedFaults) {
  Burst::Log log;
  rt::ThreadedRuntime rt(2, 11,
                         std::make_unique<sim::FixedDelay>(0.5), {});
  rt.set_fault_model(
      std::make_unique<FaultyLinkModel>(NetworkPolicy::lossy(0.4, 0.2)));
  rt.add_process(std::make_unique<Burst>(&log, 1, 400));
  rt.add_process(std::make_unique<Burst>(&log, 0, 0));
  rt.start();
  rt.run_until(
      [](rt::ThreadedRuntime& r) {
        return r.messages_delivered() + r.messages_lost() >= 400;
      },
      10.0);
  rt.stop();
  EXPECT_EQ(rt.messages_sent(), 400u);
  EXPECT_GT(rt.messages_lost(), 100u);
  EXPECT_LT(rt.messages_lost(), 250u);
  EXPECT_GT(rt.messages_duplicated(), 20u);
}

}  // namespace
}  // namespace chc::net
