// SIGTERM / SIGINT clean-shutdown regression for the real node binary.
//
// A terminated chc_node must exit 0 with its trace footers flushed: the
// recorded trace then passes the offline checker WITHOUT the torn-tail
// tolerance the checker extends to SIGKILLed live traces. This pins the
// difference between the two exits — SIGKILL legitimately tears the last
// line; SIGTERM/SIGINT must not.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/checker.hpp"
#include "transport/rpc.hpp"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

pid_t spawn_node(std::size_t id, const std::string& cluster,
                 std::uint16_t rpc_port, const std::string& trace_dir) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  ::execl(CHC_TOOL_NODE_BIN, "chc_node", "--id", std::to_string(id).c_str(),
          "--cluster", cluster.c_str(), "--client-port",
          std::to_string(rpc_port).c_str(), "--trace-dir", trace_dir.c_str(),
          static_cast<char*>(nullptr));
  _exit(127);
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(NodeShutdown, TermAndIntFlushFootersNoTornTailNeeded) {
  const fs::path trace_dir =
      fs::temp_directory_path() /
      ("chc_node_shutdown_" + std::to_string(::getpid()));
  fs::remove_all(trace_dir);
  fs::create_directories(trace_dir);

  constexpr std::size_t kN = 3;
  std::string cluster;
  for (std::size_t i = 0; i < kN; ++i) {
    if (i > 0) cluster += ',';
    cluster += "127.0.0.1:" + std::to_string(reserve_port());
  }
  std::vector<std::uint16_t> rpc_ports;
  std::vector<pid_t> pids;
  for (std::size_t i = 0; i < kN; ++i) rpc_ports.push_back(reserve_port());
  for (std::size_t i = 0; i < kN; ++i) {
    pids.push_back(spawn_node(i, cluster, rpc_ports[i], trace_dir.string()));
    ASSERT_GT(pids.back(), 0);
  }

  // Connect to each node's RPC port (retry while it boots) and submit one
  // instance: n=3 f=0 d=1, inputs 0.1 / 0.5 / 0.9.
  const std::string submit =
      "SUBMIT 0 3 0 1 0.15 7 1 0 0.1 0.5 0.9";
  std::vector<chc::transport::LineClient> rpc(kN);
  const auto boot_dl = Clock::now() + std::chrono::seconds(10);
  for (std::size_t i = 0; i < kN; ++i) {
    while (!rpc[i].connected() && Clock::now() < boot_dl) {
      if (!rpc[i].connect_to("127.0.0.1", rpc_ports[i], 200)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    ASSERT_TRUE(rpc[i].connected()) << "node " << i << " never came up";
    const auto reply = rpc[i].request(submit, 2000);
    ASSERT_TRUE(reply.has_value() && *reply == "OK")
        << "node " << i << ": " << reply.value_or("<no reply>");
  }

  // Wait until every node reports a decision.
  const auto decide_dl = Clock::now() + std::chrono::seconds(30);
  for (std::size_t i = 0; i < kN; ++i) {
    bool decided = false;
    while (!decided && Clock::now() < decide_dl) {
      const auto reply = rpc[i].request("STATUS 0", 2000);
      decided = reply.has_value() && reply->rfind("DECIDED", 0) == 0;
      if (!decided) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    EXPECT_TRUE(decided) << "node " << i << " never decided";
  }

  // The regression proper: SIGTERM two nodes, SIGINT the third. All must
  // exit 0 (clean shutdown path, not a crash or the default-terminate
  // path of an unhandled signal).
  ASSERT_EQ(::kill(pids[0], SIGTERM), 0);
  ASSERT_EQ(::kill(pids[1], SIGTERM), 0);
  ASSERT_EQ(::kill(pids[2], SIGINT), 0);
  for (std::size_t i = 0; i < kN; ++i) {
    int status = 0;
    ASSERT_EQ(::waitpid(pids[i], &status, 0), pids[i]);
    EXPECT_TRUE(WIFEXITED(status)) << "node " << i << " did not exit";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "node " << i;
  }

  // Every per-node trace must end in a footer and pass the checker with
  // no torn tail: truncated_tail flags the SIGKILL tolerance kicking in,
  // which a clean shutdown must never need.
  for (std::size_t i = 0; i < kN; ++i) {
    const fs::path trace =
        trace_dir / ("i0_node" + std::to_string(i) + "_e0.jsonl");
    ASSERT_TRUE(fs::exists(trace)) << trace;
    const std::vector<std::string> lines = read_lines(trace);
    ASSERT_GT(lines.size(), 2u) << trace;
    EXPECT_NE(lines.back().find("\"kind\":\"footer\""), std::string::npos)
        << trace << " does not end in a footer";
    const chc::obs::CheckReport report =
        chc::obs::check_trace_lines(lines);
    EXPECT_TRUE(report.ok())
        << trace << ": "
        << (report.parsed ? chc::obs::describe(report.violations.front())
                          : report.parse_error);
    EXPECT_FALSE(report.truncated_tail) << trace;
  }

  fs::remove_all(trace_dir);
}

}  // namespace
