// Argument-validation parity across the CLI tools: every driver must
// reject garbage numeric values, unknown flags, and missing required
// arguments with exit code 2 and its usage text — never an uncaught
// std::stoul exception (a crash with exit 134/139) and never a silent
// misparse like "5x" -> 5.
//
// Each tool's binary path is injected at compile time via the
// CHC_TOOL_*_BIN definitions in tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

struct CmdResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr interleaved
};

CmdResult run_cmd(const std::string& cmd) {
  CmdResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

struct ToolCase {
  const char* name;
  const char* bin;
  /// A numeric option each tool accepts, to feed garbage into.
  const char* numeric_opt;
};

const ToolCase kTools[] = {
    {"chc_byz", CHC_TOOL_BYZ_BIN, "--seed"},
    {"chc_nemesis", CHC_TOOL_NEMESIS_BIN, "--seed"},
    {"chc_record", CHC_TOOL_RECORD_BIN, "--seed"},
    {"chc_cluster", CHC_TOOL_CLUSTER_BIN, "--nodes"},
    {"chc_check", CHC_TOOL_CHECK_BIN, "--max-violations"},
    {"chc_serve", CHC_TOOL_SERVE_BIN, "--instances"},
};

TEST(CliArgs, GarbageNumericValueExitsTwoWithDiagnostic) {
  for (const ToolCase& t : kTools) {
    for (const char* bad : {"5x", "x", "-3", "", "99999999999999999999999"}) {
      const CmdResult r = run_cmd(std::string(t.bin) + " " +
                                  t.numeric_opt + " '" + bad + "'");
      EXPECT_EQ(r.exit_code, 2)
          << t.name << " " << t.numeric_opt << " '" << bad
          << "' -> exit " << r.exit_code << "\n" << r.output;
      EXPECT_NE(r.output.find("needs a non-negative integer"),
                std::string::npos)
          << t.name << " '" << bad << "': " << r.output;
      EXPECT_NE(r.output.find("usage"), std::string::npos)
          << t.name << " '" << bad << "': " << r.output;
    }
  }
}

TEST(CliArgs, UnknownFlagExitsTwoWithUsage) {
  for (const ToolCase& t : kTools) {
    const CmdResult r = run_cmd(std::string(t.bin) + " --definitely-bogus");
    EXPECT_EQ(r.exit_code, 2) << t.name << ": " << r.output;
    EXPECT_NE(r.output.find("usage"), std::string::npos)
        << t.name << ": " << r.output;
  }
}

TEST(CliArgs, MissingOptionValueExitsTwo) {
  for (const ToolCase& t : kTools) {
    const CmdResult r =
        run_cmd(std::string(t.bin) + " " + t.numeric_opt);
    EXPECT_EQ(r.exit_code, 2) << t.name << ": " << r.output;
    EXPECT_NE(r.output.find("needs a value"), std::string::npos)
        << t.name << ": " << r.output;
  }
}

TEST(CliArgs, GarbageRealValueExitsTwo) {
  struct RealCase {
    const char* bin;
    const char* opt;
  };
  for (const RealCase& c :
       {RealCase{CHC_TOOL_RECORD_BIN, "--eps"},
        RealCase{CHC_TOOL_CLUSTER_BIN, "--soak"},
        RealCase{CHC_TOOL_CHECK_BIN, "--tol"}}) {
    for (const char* bad : {"1.5x", "nan", "x", ""}) {
      const CmdResult r =
          run_cmd(std::string(c.bin) + " " + c.opt + " '" + bad + "'");
      EXPECT_EQ(r.exit_code, 2)
          << c.opt << " '" << bad << "': " << r.output;
      EXPECT_NE(r.output.find("needs a finite number"), std::string::npos)
          << c.opt << " '" << bad << "': " << r.output;
    }
  }
}

TEST(CliArgs, NodeRejectsBadValuesAndBareInvocation) {
  // chc_node predates the shared parse_count helper but has the same
  // contract: strict whole-value parsing, exit 2 + usage on garbage.
  for (const char* bad_args :
       {"--id 5x", "--client-port 70000", "--time-scale x",
        "--definitely-bogus", "--id", ""}) {
    const CmdResult r =
        run_cmd(std::string(CHC_TOOL_NODE_BIN) + " " + bad_args);
    EXPECT_EQ(r.exit_code, 2) << "chc_node " << bad_args << ": "
                              << r.output;
    EXPECT_NE(r.output.find("usage"), std::string::npos)
        << "chc_node " << bad_args << ": " << r.output;
  }
}

TEST(CliArgs, NoModeExitsTwoWithUsage) {
  // Tools that require a mode/required argument print usage and exit 2
  // when invoked bare. (chc_serve and chc_cluster run with defaults, so
  // they are exercised via the bad-value cases above instead.)
  for (const char* bin : {CHC_TOOL_BYZ_BIN, CHC_TOOL_NEMESIS_BIN,
                          CHC_TOOL_RECORD_BIN, CHC_TOOL_CHECK_BIN}) {
    const CmdResult r = run_cmd(bin);
    EXPECT_EQ(r.exit_code, 2) << bin << ": " << r.output;
    EXPECT_NE(r.output.find("usage"), std::string::npos)
        << bin << ": " << r.output;
  }
}

TEST(CliArgs, HelpExitsZero) {
  for (const ToolCase& t : kTools) {
    const CmdResult r = run_cmd(std::string(t.bin) + " --help");
    EXPECT_EQ(r.exit_code, 0) << t.name << ": " << r.output;
    EXPECT_NE(r.output.find("usage"), std::string::npos) << t.name;
  }
}

}  // namespace
