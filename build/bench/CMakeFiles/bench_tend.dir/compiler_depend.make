# Empty compiler generated dependencies file for bench_tend.
# This may be replaced when dependencies are built.
