file(REMOVE_RECURSE
  "CMakeFiles/bench_tend.dir/bench_tend.cpp.o"
  "CMakeFiles/bench_tend.dir/bench_tend.cpp.o.d"
  "bench_tend"
  "bench_tend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
