file(REMOVE_RECURSE
  "CMakeFiles/bench_geometry_micro.dir/bench_geometry_micro.cpp.o"
  "CMakeFiles/bench_geometry_micro.dir/bench_geometry_micro.cpp.o.d"
  "bench_geometry_micro"
  "bench_geometry_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geometry_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
