file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_consensus.dir/bench_vector_consensus.cpp.o"
  "CMakeFiles/bench_vector_consensus.dir/bench_vector_consensus.cpp.o.d"
  "bench_vector_consensus"
  "bench_vector_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
