# Empty dependencies file for bench_stablevector.
# This may be replaced when dependencies are built.
