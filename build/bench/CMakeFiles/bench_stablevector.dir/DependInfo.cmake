
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_stablevector.cpp" "bench/CMakeFiles/bench_stablevector.dir/bench_stablevector.cpp.o" "gcc" "bench/CMakeFiles/bench_stablevector.dir/bench_stablevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/chc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/optimize/CMakeFiles/chc_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/chc_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/chc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/chc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
