file(REMOVE_RECURSE
  "CMakeFiles/bench_stablevector.dir/bench_stablevector.cpp.o"
  "CMakeFiles/bench_stablevector.dir/bench_stablevector.cpp.o.d"
  "bench_stablevector"
  "bench_stablevector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stablevector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
