# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_dsm[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_rbc[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
