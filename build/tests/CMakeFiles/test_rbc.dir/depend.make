# Empty dependencies file for test_rbc.
# This may be replaced when dependencies are built.
