
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geometry/affine_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/affine_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/affine_test.cpp.o.d"
  "/root/repo/tests/geometry/distance_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/distance_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/distance_test.cpp.o.d"
  "/root/repo/tests/geometry/hull2d_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/hull2d_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/hull2d_test.cpp.o.d"
  "/root/repo/tests/geometry/ops_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/ops_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/ops_test.cpp.o.d"
  "/root/repo/tests/geometry/polytope_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/polytope_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/polytope_test.cpp.o.d"
  "/root/repo/tests/geometry/property_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/property_test.cpp.o.d"
  "/root/repo/tests/geometry/quickhull_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/quickhull_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/quickhull_test.cpp.o.d"
  "/root/repo/tests/geometry/simplify_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/simplify_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/simplify_test.cpp.o.d"
  "/root/repo/tests/geometry/tverberg_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/tverberg_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/tverberg_test.cpp.o.d"
  "/root/repo/tests/geometry/vec_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/vec_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/vec_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/chc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/chc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
