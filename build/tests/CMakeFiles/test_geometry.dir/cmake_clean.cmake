file(REMOVE_RECURSE
  "CMakeFiles/test_geometry.dir/geometry/affine_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/affine_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/distance_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/distance_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/hull2d_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/hull2d_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/ops_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/ops_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/polytope_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/polytope_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/property_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/property_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/quickhull_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/quickhull_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/simplify_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/simplify_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/tverberg_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/tverberg_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/vec_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/vec_test.cpp.o.d"
  "test_geometry"
  "test_geometry.pdb"
  "test_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
