file(REMOVE_RECURSE
  "CMakeFiles/test_dsm.dir/dsm/stable_vector_test.cpp.o"
  "CMakeFiles/test_dsm.dir/dsm/stable_vector_test.cpp.o.d"
  "CMakeFiles/test_dsm.dir/dsm/store_test.cpp.o"
  "CMakeFiles/test_dsm.dir/dsm/store_test.cpp.o.d"
  "test_dsm"
  "test_dsm.pdb"
  "test_dsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
