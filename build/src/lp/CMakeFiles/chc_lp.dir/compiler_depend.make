# Empty compiler generated dependencies file for chc_lp.
# This may be replaced when dependencies are built.
