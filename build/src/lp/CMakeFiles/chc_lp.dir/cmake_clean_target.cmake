file(REMOVE_RECURSE
  "libchc_lp.a"
)
