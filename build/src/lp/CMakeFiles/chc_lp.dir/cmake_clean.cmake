file(REMOVE_RECURSE
  "CMakeFiles/chc_lp.dir/simplex.cpp.o"
  "CMakeFiles/chc_lp.dir/simplex.cpp.o.d"
  "libchc_lp.a"
  "libchc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
