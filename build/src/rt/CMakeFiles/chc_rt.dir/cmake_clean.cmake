file(REMOVE_RECURSE
  "CMakeFiles/chc_rt.dir/runtime.cpp.o"
  "CMakeFiles/chc_rt.dir/runtime.cpp.o.d"
  "libchc_rt.a"
  "libchc_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
