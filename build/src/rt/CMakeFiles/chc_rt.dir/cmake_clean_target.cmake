file(REMOVE_RECURSE
  "libchc_rt.a"
)
