# Empty compiler generated dependencies file for chc_rt.
# This may be replaced when dependencies are built.
