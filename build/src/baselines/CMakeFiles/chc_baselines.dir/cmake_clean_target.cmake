file(REMOVE_RECURSE
  "libchc_baselines.a"
)
