# Empty compiler generated dependencies file for chc_baselines.
# This may be replaced when dependencies are built.
