file(REMOVE_RECURSE
  "CMakeFiles/chc_baselines.dir/vector_consensus.cpp.o"
  "CMakeFiles/chc_baselines.dir/vector_consensus.cpp.o.d"
  "libchc_baselines.a"
  "libchc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
