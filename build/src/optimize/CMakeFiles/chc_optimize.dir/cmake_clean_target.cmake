file(REMOVE_RECURSE
  "libchc_optimize.a"
)
