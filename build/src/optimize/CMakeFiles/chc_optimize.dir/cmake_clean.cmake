file(REMOVE_RECURSE
  "CMakeFiles/chc_optimize.dir/cost.cpp.o"
  "CMakeFiles/chc_optimize.dir/cost.cpp.o.d"
  "CMakeFiles/chc_optimize.dir/minimize.cpp.o"
  "CMakeFiles/chc_optimize.dir/minimize.cpp.o.d"
  "CMakeFiles/chc_optimize.dir/two_step.cpp.o"
  "CMakeFiles/chc_optimize.dir/two_step.cpp.o.d"
  "libchc_optimize.a"
  "libchc_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
