# Empty dependencies file for chc_optimize.
# This may be replaced when dependencies are built.
