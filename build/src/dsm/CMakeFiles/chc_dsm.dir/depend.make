# Empty dependencies file for chc_dsm.
# This may be replaced when dependencies are built.
