file(REMOVE_RECURSE
  "libchc_dsm.a"
)
