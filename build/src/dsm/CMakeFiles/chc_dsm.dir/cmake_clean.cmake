file(REMOVE_RECURSE
  "CMakeFiles/chc_dsm.dir/stable_vector.cpp.o"
  "CMakeFiles/chc_dsm.dir/stable_vector.cpp.o.d"
  "CMakeFiles/chc_dsm.dir/store.cpp.o"
  "CMakeFiles/chc_dsm.dir/store.cpp.o.d"
  "libchc_dsm.a"
  "libchc_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
