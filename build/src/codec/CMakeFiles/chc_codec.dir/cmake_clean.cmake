file(REMOVE_RECURSE
  "CMakeFiles/chc_codec.dir/codec.cpp.o"
  "CMakeFiles/chc_codec.dir/codec.cpp.o.d"
  "libchc_codec.a"
  "libchc_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
