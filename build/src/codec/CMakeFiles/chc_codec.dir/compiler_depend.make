# Empty compiler generated dependencies file for chc_codec.
# This may be replaced when dependencies are built.
