file(REMOVE_RECURSE
  "libchc_codec.a"
)
