
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/chc_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/chc_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/chc_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/chc_core.dir/config.cpp.o.d"
  "/root/repo/src/core/harness.cpp" "src/core/CMakeFiles/chc_core.dir/harness.cpp.o" "gcc" "src/core/CMakeFiles/chc_core.dir/harness.cpp.o.d"
  "/root/repo/src/core/process_cc.cpp" "src/core/CMakeFiles/chc_core.dir/process_cc.cpp.o" "gcc" "src/core/CMakeFiles/chc_core.dir/process_cc.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/chc_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/chc_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/chc_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/chc_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/chc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/chc_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/chc_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
