# Empty dependencies file for chc_core.
# This may be replaced when dependencies are built.
