file(REMOVE_RECURSE
  "CMakeFiles/chc_core.dir/analysis.cpp.o"
  "CMakeFiles/chc_core.dir/analysis.cpp.o.d"
  "CMakeFiles/chc_core.dir/config.cpp.o"
  "CMakeFiles/chc_core.dir/config.cpp.o.d"
  "CMakeFiles/chc_core.dir/harness.cpp.o"
  "CMakeFiles/chc_core.dir/harness.cpp.o.d"
  "CMakeFiles/chc_core.dir/process_cc.cpp.o"
  "CMakeFiles/chc_core.dir/process_cc.cpp.o.d"
  "CMakeFiles/chc_core.dir/trace.cpp.o"
  "CMakeFiles/chc_core.dir/trace.cpp.o.d"
  "CMakeFiles/chc_core.dir/workload.cpp.o"
  "CMakeFiles/chc_core.dir/workload.cpp.o.d"
  "libchc_core.a"
  "libchc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
