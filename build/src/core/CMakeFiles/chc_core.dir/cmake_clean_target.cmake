file(REMOVE_RECURSE
  "libchc_core.a"
)
