# Empty compiler generated dependencies file for chc_sim.
# This may be replaced when dependencies are built.
