file(REMOVE_RECURSE
  "CMakeFiles/chc_sim.dir/delay.cpp.o"
  "CMakeFiles/chc_sim.dir/delay.cpp.o.d"
  "CMakeFiles/chc_sim.dir/simulation.cpp.o"
  "CMakeFiles/chc_sim.dir/simulation.cpp.o.d"
  "libchc_sim.a"
  "libchc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
