file(REMOVE_RECURSE
  "libchc_sim.a"
)
