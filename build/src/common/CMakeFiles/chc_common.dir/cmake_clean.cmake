file(REMOVE_RECURSE
  "CMakeFiles/chc_common.dir/combinatorics.cpp.o"
  "CMakeFiles/chc_common.dir/combinatorics.cpp.o.d"
  "CMakeFiles/chc_common.dir/rng.cpp.o"
  "CMakeFiles/chc_common.dir/rng.cpp.o.d"
  "CMakeFiles/chc_common.dir/table.cpp.o"
  "CMakeFiles/chc_common.dir/table.cpp.o.d"
  "libchc_common.a"
  "libchc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
