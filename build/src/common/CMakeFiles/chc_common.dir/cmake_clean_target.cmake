file(REMOVE_RECURSE
  "libchc_common.a"
)
