# Empty compiler generated dependencies file for chc_common.
# This may be replaced when dependencies are built.
