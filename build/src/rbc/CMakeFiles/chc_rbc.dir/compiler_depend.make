# Empty compiler generated dependencies file for chc_rbc.
# This may be replaced when dependencies are built.
