file(REMOVE_RECURSE
  "CMakeFiles/chc_rbc.dir/bracha.cpp.o"
  "CMakeFiles/chc_rbc.dir/bracha.cpp.o.d"
  "libchc_rbc.a"
  "libchc_rbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_rbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
