file(REMOVE_RECURSE
  "libchc_rbc.a"
)
