
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/affine.cpp" "src/geometry/CMakeFiles/chc_geometry.dir/affine.cpp.o" "gcc" "src/geometry/CMakeFiles/chc_geometry.dir/affine.cpp.o.d"
  "/root/repo/src/geometry/distance.cpp" "src/geometry/CMakeFiles/chc_geometry.dir/distance.cpp.o" "gcc" "src/geometry/CMakeFiles/chc_geometry.dir/distance.cpp.o.d"
  "/root/repo/src/geometry/hull2d.cpp" "src/geometry/CMakeFiles/chc_geometry.dir/hull2d.cpp.o" "gcc" "src/geometry/CMakeFiles/chc_geometry.dir/hull2d.cpp.o.d"
  "/root/repo/src/geometry/ops.cpp" "src/geometry/CMakeFiles/chc_geometry.dir/ops.cpp.o" "gcc" "src/geometry/CMakeFiles/chc_geometry.dir/ops.cpp.o.d"
  "/root/repo/src/geometry/polytope.cpp" "src/geometry/CMakeFiles/chc_geometry.dir/polytope.cpp.o" "gcc" "src/geometry/CMakeFiles/chc_geometry.dir/polytope.cpp.o.d"
  "/root/repo/src/geometry/quickhull.cpp" "src/geometry/CMakeFiles/chc_geometry.dir/quickhull.cpp.o" "gcc" "src/geometry/CMakeFiles/chc_geometry.dir/quickhull.cpp.o.d"
  "/root/repo/src/geometry/simplify.cpp" "src/geometry/CMakeFiles/chc_geometry.dir/simplify.cpp.o" "gcc" "src/geometry/CMakeFiles/chc_geometry.dir/simplify.cpp.o.d"
  "/root/repo/src/geometry/tverberg.cpp" "src/geometry/CMakeFiles/chc_geometry.dir/tverberg.cpp.o" "gcc" "src/geometry/CMakeFiles/chc_geometry.dir/tverberg.cpp.o.d"
  "/root/repo/src/geometry/vec.cpp" "src/geometry/CMakeFiles/chc_geometry.dir/vec.cpp.o" "gcc" "src/geometry/CMakeFiles/chc_geometry.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/chc_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
