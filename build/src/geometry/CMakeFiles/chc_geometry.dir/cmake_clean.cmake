file(REMOVE_RECURSE
  "CMakeFiles/chc_geometry.dir/affine.cpp.o"
  "CMakeFiles/chc_geometry.dir/affine.cpp.o.d"
  "CMakeFiles/chc_geometry.dir/distance.cpp.o"
  "CMakeFiles/chc_geometry.dir/distance.cpp.o.d"
  "CMakeFiles/chc_geometry.dir/hull2d.cpp.o"
  "CMakeFiles/chc_geometry.dir/hull2d.cpp.o.d"
  "CMakeFiles/chc_geometry.dir/ops.cpp.o"
  "CMakeFiles/chc_geometry.dir/ops.cpp.o.d"
  "CMakeFiles/chc_geometry.dir/polytope.cpp.o"
  "CMakeFiles/chc_geometry.dir/polytope.cpp.o.d"
  "CMakeFiles/chc_geometry.dir/quickhull.cpp.o"
  "CMakeFiles/chc_geometry.dir/quickhull.cpp.o.d"
  "CMakeFiles/chc_geometry.dir/simplify.cpp.o"
  "CMakeFiles/chc_geometry.dir/simplify.cpp.o.d"
  "CMakeFiles/chc_geometry.dir/tverberg.cpp.o"
  "CMakeFiles/chc_geometry.dir/tverberg.cpp.o.d"
  "CMakeFiles/chc_geometry.dir/vec.cpp.o"
  "CMakeFiles/chc_geometry.dir/vec.cpp.o.d"
  "libchc_geometry.a"
  "libchc_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
