# Empty dependencies file for chc_geometry.
# This may be replaced when dependencies are built.
