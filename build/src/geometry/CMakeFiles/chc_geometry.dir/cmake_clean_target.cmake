file(REMOVE_RECURSE
  "libchc_geometry.a"
)
