# Empty compiler generated dependencies file for chc_cli.
# This may be replaced when dependencies are built.
