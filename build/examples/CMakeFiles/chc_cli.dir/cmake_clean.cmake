file(REMOVE_RECURSE
  "CMakeFiles/chc_cli.dir/chc_cli.cpp.o"
  "CMakeFiles/chc_cli.dir/chc_cli.cpp.o.d"
  "chc_cli"
  "chc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
