file(REMOVE_RECURSE
  "CMakeFiles/tverberg_demo.dir/tverberg_demo.cpp.o"
  "CMakeFiles/tverberg_demo.dir/tverberg_demo.cpp.o.d"
  "tverberg_demo"
  "tverberg_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tverberg_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
