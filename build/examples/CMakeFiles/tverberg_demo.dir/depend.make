# Empty dependencies file for tverberg_demo.
# This may be replaced when dependencies are built.
