# Empty compiler generated dependencies file for function_optimization.
# This may be replaced when dependencies are built.
