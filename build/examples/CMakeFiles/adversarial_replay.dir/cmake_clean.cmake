file(REMOVE_RECURSE
  "CMakeFiles/adversarial_replay.dir/adversarial_replay.cpp.o"
  "CMakeFiles/adversarial_replay.dir/adversarial_replay.cpp.o.d"
  "adversarial_replay"
  "adversarial_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
