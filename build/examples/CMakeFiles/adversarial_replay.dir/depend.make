# Empty dependencies file for adversarial_replay.
# This may be replaced when dependencies are built.
