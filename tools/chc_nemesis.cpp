// chc_nemesis: runs nemesis fault scenarios (partitions, heal, crash-
// recover, delay storms, churn) against Algorithm CC, writes the JSONL
// traces, and verifies every run with the offline invariant checker.
//
//   chc_nemesis --list                         show the preset matrix
//   chc_nemesis --preset NAME [--seed N]       one scenario run
//   chc_nemesis --all [--seed N]               every preset once
//   chc_nemesis --fuzz N [--seed BASE]         N random composed scenarios
//
// Every mode exits non-zero if any run fails (checker violation, or the
// outcome contradicts the preset's expectation — e.g. a healed partition
// that never decides, or an over-budget scenario that "decides" anyway).
// With --out / --out-dir the traces are written for chc_check / archival;
// by default only failing traces are written (those are the interesting
// ones). --report writes the metrics registry JSON.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "nemesis/presets.hpp"
#include "nemesis/runner.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace chc;

void usage() {
  std::cerr << "usage:\n"
               "  chc_nemesis --list\n"
               "  chc_nemesis --preset NAME [--seed N] [--out FILE]\n"
               "              [--report FILE]\n"
               "  chc_nemesis --all [--seed N] [--out-dir DIR]\n"
               "              [--report FILE]\n"
               "  chc_nemesis --fuzz N [--seed BASE] [--out-dir DIR]\n"
               "              [--report FILE]\n";
}

void write_trace(const nemesis::ScenarioResult& r, const std::string& path) {
  std::ofstream out(path);
  for (const std::string& line : r.trace_lines) out << line << "\n";
}

/// Runs one preset; writes the trace when a path is given or the run
/// failed (failing traces land next to out_dir, or ./ without one).
bool run_and_report(const nemesis::Preset& preset, std::uint64_t seed,
                    obs::Registry* metrics, const std::string& out_path,
                    const std::string& out_dir) {
  const nemesis::ScenarioResult r = nemesis::run_preset(preset, seed, metrics);
  std::cout << nemesis::summarize(r) << "\n";
  std::string path = out_path;
  if (path.empty() && (!out_dir.empty() || !r.passed)) {
    const std::string dir = out_dir.empty() ? "." : out_dir;
    path = dir + "/nemesis_" + r.name + "_" + std::to_string(seed) + ".jsonl";
  }
  if (!path.empty()) write_trace(r, path);
  return r.passed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset_name, out, out_dir, report;
  std::uint64_t seed = 1;
  std::size_t fuzz = 0;
  bool list = false, all = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") list = true;
    else if (arg == "--all") all = true;
    else if (arg == "--preset") preset_name = next();
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--fuzz") fuzz = std::stoul(next());
    else if (arg == "--out") out = next();
    else if (arg == "--out-dir") out_dir = next();
    else if (arg == "--report") report = next();
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }

  if (list) {
    for (const nemesis::Preset& p : nemesis::presets()) {
      std::cout << p.name << "  (n=" << p.n << " f=" << p.f << " d=" << p.d
                << ", expect "
                << (p.expect_decide ? "decide" : "stall-safe") << ")\n    "
                << p.description << "\n";
    }
    return 0;
  }

  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
  obs::Registry metrics;
  std::size_t ran = 0, failed = 0;

  if (fuzz > 0) {
    for (std::size_t i = 0; i < fuzz; ++i) {
      const std::uint64_t s = seed + i;
      const nemesis::Preset p = nemesis::sample_preset(s);
      ++ran;
      if (!run_and_report(p, s, &metrics, "", out_dir)) ++failed;
    }
  } else if (all) {
    for (const nemesis::Preset& p : nemesis::presets()) {
      ++ran;
      if (!run_and_report(p, seed, &metrics, "", out_dir)) ++failed;
    }
  } else if (!preset_name.empty()) {
    const nemesis::Preset* p = nemesis::find_preset(preset_name);
    if (p == nullptr) {
      std::cerr << "unknown preset: " << preset_name << " (try --list)\n";
      return 2;
    }
    ++ran;
    if (!run_and_report(*p, seed, &metrics, out, out_dir)) ++failed;
  } else {
    usage();
    return 2;
  }

  if (!report.empty()) {
    std::ofstream rep(report);
    rep << metrics.to_json() << "\n";
  }
  std::cout << (ran - failed) << "/" << ran << " scenario runs passed\n";
  return failed == 0 ? 0 : 1;
}
