// chc_cluster: launcher / controller for a real multi-process cluster.
//
//   chc_cluster [--nodes N] [--f F] [--d D] [--eps E] [--instances K]
//               [--seed BASE] [--trace-dir DIR] [--node-bin PATH]
//               [--no-kill] [--soak SECONDS] [--timeout SECONDS]
//               [--time-scale S] [--report FILE]
//               [--nemesis NAME|all] [--list-nemesis]
//               [--fuzz CYCLES] [--soak-minutes M]
//
// Spawns N chc_node processes on 127.0.0.1 (ephemeral ports, reserved by
// probing), drives waves of Algorithm CC instances through them via the
// line RPC, and verifies the outcome three ways: pairwise decision
// agreement (Hausdorff distance <= eps), per-node trace checking, and a
// merged full-view trace per instance (trace-dir/merged_i<id>.jsonl, with
// synthesized crash/recover events between a killed node's epoch
// segments) re-verified by the same offline pass `chc_check` runs in CI.
//
// Two driving modes:
//
//  * Legacy kill/restart (default): two waves of K instances; unless
//    --no-kill, the workload-faulty node is SIGKILLed mid-wave-1,
//    restarted with a bumped --epoch, and must fully rejoin (decide every
//    wave-2 instance). --soak S repeats such cycles for ~S seconds.
//
//  * Live nemesis (--nemesis / --fuzz / --soak-minutes): a
//    nemesis::LivePreset compiles one Scenario into (a) a
//    net::PolicySchedule broadcast to every node's FaultyTransport over
//    the NEMESIS RPC, anchored to one shared wall-clock instant, (b)
//    SIGKILL / restart+epoch-bump / SIGSTOP / SIGCONT actions this
//    controller executes at anchored times, and (c) per-node --clock-rate
//    skews (nodes whose rate changes are cleanly restarted first). After
//    the plan's quiet point every never-killed node must decide.
//    --nemesis takes one preset name or `all`; --fuzz N runs N seeded
//    random scenario compositions; --soak-minutes M repeats fuzz cycles
//    with rotating seeds for ~M minutes and additionally gates RSS and
//    send-queue high-water stability across the run (first-third vs
//    last-third means). Nemesis presets fix n/f/d/eps (5/1/2/0.15).
//
// Exit 0 only when every required instance decided, every agreement held,
// every trace passed the checker, and (soak) the stability gates held.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <netinet/in.h>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/workload.hpp"
#include "geometry/polytope.hpp"
#include "nemesis/live.hpp"
#include "obs/checker.hpp"
#include "obs/trace.hpp"
#include "transport/faulty.hpp"
#include "transport/rpc.hpp"

namespace {

using namespace chc;
namespace fs = std::filesystem;

/// Wall seconds between broadcasting a NEMESIS schedule and its t=0: long
/// enough for N round-trips of the arming RPC, short enough not to matter.
constexpr double kAnchorLeadSec = 0.35;

/// TcpTransport's per-peer send-queue bound (tcp.cpp refuses the insert
/// past this, so the high-water mark can never legitimately exceed it).
constexpr double kOutqCapBytes = 8.0 * 1024.0 * 1024.0;

void usage() {
  std::cerr
      << "usage: chc_cluster [--nodes N] [--f F] [--d D] [--eps E]\n"
         "                   [--instances K] [--seed BASE] [--trace-dir "
         "DIR]\n"
         "                   [--node-bin PATH] [--no-kill] [--soak SECONDS]\n"
         "                   [--timeout SECONDS] [--time-scale S]\n"
         "                   [--report FILE]\n"
         "                   [--nemesis NAME|all] [--list-nemesis]\n"
         "                   [--fuzz CYCLES] [--soak-minutes M]\n"
         "nemesis presets fix --nodes/--f/--d/--eps; see --list-nemesis\n";
}

/// Strict numeric argument parsing: the whole value must be digits.
/// std::stoul alone would throw an uncaught exception on garbage (or
/// silently accept "5x"), turning a typo into a crash instead of usage.
std::uint64_t parse_count(const std::string& opt, const std::string& val) {
  std::uint64_t v = 0;
  bool ok = !val.empty();
  for (char ch : val) {
    if (ch < '0' || ch > '9' || v > (UINT64_MAX - 9) / 10) {
      ok = false;
      break;
    }
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  if (!ok) {
    std::cerr << opt << " needs a non-negative integer, got '" << val
              << "'\n";
    usage();
    std::exit(2);
  }
  return v;
}

/// Same contract for real-valued options: the whole value must parse.
double parse_real(const std::string& opt, const std::string& val) {
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  if (val.empty() || end == nullptr || *end != '\0' || !std::isfinite(v)) {
    std::cerr << opt << " needs a finite number, got '" << val << "'\n";
    usage();
    std::exit(2);
  }
  return v;
}

double mono_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CLOCK_REALTIME seconds — the clock FaultyTransport maps its schedule
/// on, so anchors computed here and phase switches there agree.
double realtime_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Sleeps (coarsely far out, finely close in) until the realtime instant.
void wait_until_realtime(double target) {
  for (;;) {
    const double remaining = target - realtime_now();
    if (remaining <= 0.0) return;
    sleep_ms(remaining > 0.05 ? 20 : 2);
  }
}

/// VmRSS of a live process in kB (0 when unreadable — e.g. it just died).
double read_rss_kb(pid_t pid) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream is(line.substr(6));
      double kb = 0.0;
      if (is >> kb) return kb;
    }
  }
  return 0.0;
}

/// Value of `key` in a "STATS k=v k=v ..." reply (0 when absent).
std::uint64_t stats_value(const std::string& reply, const std::string& key) {
  std::istringstream is(reply);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || tok.substr(0, eq) != key) continue;
    return std::strtoull(tok.c_str() + eq + 1, nullptr, 10);
  }
  return 0;
}

/// Reserves an ephemeral TCP port by binding :0 and closing. The tiny
/// reuse race is acceptable for a local test harness.
std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

struct Options {
  std::size_t nodes = 5;
  std::size_t f = 1;
  std::size_t d = 2;
  double eps = 0.15;
  std::size_t instances = 2;  ///< per wave / nemesis cycle
  std::uint64_t seed = 1;
  std::string trace_dir = "cluster-traces";
  std::string node_bin;
  bool kill = true;
  double soak = 0.0;
  double timeout = 90.0;
  double time_scale = 2e-3;
  bool time_scale_set = false;
  std::string report;
  std::string nemesis;        ///< preset name or "all"
  bool list_nemesis = false;
  std::uint64_t fuzz = 0;     ///< random nemesis cycles
  double soak_minutes = 0.0;  ///< rotating-seed fuzz soak
};

struct Node {
  pid_t pid = -1;
  std::uint16_t peer_port = 0;
  std::uint16_t rpc_port = 0;
  std::uint64_t epoch = 0;
  double clock_rate = 1.0;
  bool alive = false;
  bool paused = false;  ///< under SIGSTOP
};

class Cluster {
 public:
  Cluster(const Options& opt) : opt_(opt), nodes_(opt.nodes) {
    for (auto& n : nodes_) {
      n.peer_port = reserve_port();
      n.rpc_port = reserve_port();
      if (n.peer_port == 0 || n.rpc_port == 0) {
        throw std::runtime_error("cannot reserve local ports");
      }
    }
    std::ostringstream spec;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (i != 0) spec << ',';
      spec << "127.0.0.1:" << nodes_[i].peer_port;
    }
    cluster_spec_ = spec.str();
  }

  ~Cluster() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].alive && nodes_[i].pid > 0) {
        ::kill(nodes_[i].pid, SIGKILL);
        ::waitpid(nodes_[i].pid, nullptr, 0);
      }
    }
  }

  bool spawn(std::size_t i) {
    Node& n = nodes_[i];
    const std::string log = opt_.trace_dir + "/node" + std::to_string(i) +
                            "_e" + std::to_string(n.epoch) + ".log";
    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      std::vector<std::string> args = {
          opt_.node_bin,
          "--id", std::to_string(i),
          "--cluster", cluster_spec_,
          "--client-port", std::to_string(n.rpc_port),
          "--epoch", std::to_string(n.epoch),
          "--trace-dir", opt_.trace_dir,
          "--time-scale", std::to_string(opt_.time_scale),
      };
      if (n.clock_rate != 1.0) {
        std::ostringstream rate;
        rate.precision(17);
        rate << n.clock_rate;
        args.push_back("--clock-rate");
        args.push_back(rate.str());
      }
      std::vector<char*> argv;
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    n.pid = pid;
    n.alive = true;
    n.paused = false;
    return true;
  }

  /// PINGs node i until it answers (the readiness barrier after spawn).
  bool wait_ready(std::size_t i, double deadline_s = 15.0) {
    const double deadline = mono_now() + deadline_s;
    while (mono_now() < deadline) {
      transport::LineClient c;
      if (c.connect_to("127.0.0.1", nodes_[i].rpc_port, 200)) {
        const auto resp = c.request("PING", 500);
        if (resp && resp->rfind("PONG", 0) == 0) return true;
      }
      sleep_ms(50);
    }
    return false;
  }

  std::optional<std::string> rpc(std::size_t i, const std::string& req,
                                 int timeout_ms = 2000) {
    transport::LineClient c;
    if (!c.connect_to("127.0.0.1", nodes_[i].rpc_port, timeout_ms)) {
      return std::nullopt;
    }
    return c.request(req, timeout_ms);
  }

  void kill_node(std::size_t i) {
    Node& n = nodes_[i];
    if (!n.alive) return;
    ::kill(n.pid, SIGKILL);  // also terminates a SIGSTOPped process
    ::waitpid(n.pid, nullptr, 0);
    n.alive = false;
    n.paused = false;
  }

  void stop_node(std::size_t i) {
    Node& n = nodes_[i];
    if (!n.alive || n.paused) return;
    ::kill(n.pid, SIGSTOP);
    n.paused = true;
  }

  void cont_node(std::size_t i) {
    Node& n = nodes_[i];
    if (!n.alive || !n.paused) return;
    ::kill(n.pid, SIGCONT);
    n.paused = false;
  }

  bool restart_node(std::size_t i) {
    Node& n = nodes_[i];
    if (n.alive) return true;
    ++n.epoch;
    return spawn(i) && wait_ready(i);
  }

  /// Makes node i run at `rate`. A live node at a different rate is shut
  /// down CLEANLY (SHUTDOWN RPC -> SIGKILL fallback) and respawned with a
  /// bumped epoch — clock rate is a spawn-time property of chc_node.
  bool set_clock_rate(std::size_t i, double rate) {
    Node& n = nodes_[i];
    if (!n.alive) {
      n.clock_rate = rate;
      ++n.epoch;
      return spawn(i) && wait_ready(i);
    }
    if (std::abs(n.clock_rate - rate) < 1e-12) return true;
    shutdown_one(i);
    n.clock_rate = rate;
    ++n.epoch;
    return spawn(i) && wait_ready(i);
  }

  void shutdown_one(std::size_t i) {
    Node& n = nodes_[i];
    if (!n.alive) return;
    cont_node(i);  // a SIGSTOPped node cannot serve SHUTDOWN
    rpc(i, "SHUTDOWN", 2000);
    int status = 0;
    const double deadline = mono_now() + 5.0;
    while (mono_now() < deadline) {
      const pid_t r = ::waitpid(n.pid, &status, WNOHANG);
      if (r == n.pid) {
        n.alive = false;
        break;
      }
      sleep_ms(20);
    }
    if (n.alive) {
      ::kill(n.pid, SIGKILL);
      ::waitpid(n.pid, nullptr, 0);
      n.alive = false;
    }
  }

  void shutdown_all() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) shutdown_one(i);
  }

  std::size_t n() const { return nodes_.size(); }
  bool alive(std::size_t i) const { return nodes_[i].alive; }
  pid_t pid(std::size_t i) const { return nodes_[i].pid; }
  std::uint64_t epoch(std::size_t i) const { return nodes_[i].epoch; }
  std::uint64_t max_epoch() const {
    std::uint64_t m = 0;
    for (const Node& n : nodes_) m = std::max(m, n.epoch);
    return m;
  }

 private:
  Options opt_;
  std::vector<Node> nodes_;
  std::string cluster_spec_;
};

/// One instance's controller-side bookkeeping.
struct InstanceRun {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  core::Workload workload;
  double magnitude = 1.0;
  /// Nodes SIGKILLed while this instance was in flight (merge synthesizes
  /// their crash events).
  std::set<std::size_t> killed;
};

std::string submit_line(const Options& opt, const InstanceRun& run) {
  std::ostringstream os;
  os.precision(17);
  os << "SUBMIT " << run.id << ' ' << opt.nodes << ' ' << opt.f << ' '
     << opt.d << ' ' << opt.eps << ' ' << run.seed << ' ' << run.magnitude
     << ' ' << run.workload.faulty.size();
  for (const auto p : run.workload.faulty) os << ' ' << p;
  for (const geo::Vec& v : run.workload.inputs) {
    for (std::size_t k = 0; k < v.dim(); ++k) os << ' ' << v[k];
  }
  return os.str();
}

/// `nf` — how many workload-faulty pids to draw (<= opt.f; nemesis presets
/// with no process fault run nf = 0 so every node must decide).
InstanceRun make_run(const Options& opt, std::uint64_t id,
                     std::uint64_t seed, std::size_t nf) {
  InstanceRun run;
  run.id = id;
  run.seed = seed;
  run.workload = core::make_workload(opt.nodes, nf, opt.d,
                                     core::InputPattern::kUniform, seed);
  run.magnitude = std::max(1.0, run.workload.correct_magnitude);
  return run;
}

/// Parses a DECIDED response into vertices; nullopt for anything else.
std::optional<std::vector<geo::Vec>> parse_decided(const std::string& resp) {
  std::istringstream is(resp);
  std::string word;
  if (!(is >> word) || word != "DECIDED") return std::nullopt;
  std::size_t round = 0, nverts = 0, d = 0;
  if (!(is >> round >> nverts >> d)) return std::nullopt;
  std::vector<geo::Vec> verts;
  verts.reserve(nverts);
  for (std::size_t v = 0; v < nverts; ++v) {
    geo::Vec x(d);
    for (std::size_t k = 0; k < d; ++k) {
      if (!(is >> x[k])) return std::nullopt;
    }
    verts.push_back(std::move(x));
  }
  return verts;
}

// --- Trace merging -------------------------------------------------------

struct TraceSegment {
  obs::TraceHeader header;
  std::vector<obs::TraceEvent> events;
  bool decided = false;
};

/// Loads one per-node trace file; tolerates a torn final line (SIGKILL).
std::optional<TraceSegment> load_segment(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  TraceSegment seg;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (!obs::parse_header(line, seg.header)) return std::nullopt;
      continue;
    }
    obs::TraceEvent e;
    if (obs::parse_event(line, e)) {
      if (e.kind == obs::EventKind::kDecide) seg.decided = true;
      seg.events.push_back(std::move(e));
      continue;
    }
    obs::TraceFooter f;
    if (obs::parse_footer(line, f)) continue;
    // Anything else is only legitimate as a torn final line; the checker
    // applies the same rule per file.
  }
  if (first) return std::nullopt;  // empty file
  return seg;
}

/// Merges the per-node perspective traces of one instance into a full-view
/// live trace, synthesizing kCrash/kRecover between a node's epoch
/// segments (and a trailing kCrash for nodes that died without deciding).
/// `epoch_limit` bounds the per-node epoch scan (soak runs bump epochs far
/// past the old fixed window). Returns false when no node produced a
/// usable trace.
bool merge_instance_traces(const Options& opt, const InstanceRun& run,
                           std::uint64_t epoch_limit,
                           const fs::path& out_path) {
  std::vector<std::vector<TraceSegment>> per_node(opt.nodes);
  bool have_header = false;
  obs::TraceHeader header;
  for (std::size_t k = 0; k < opt.nodes; ++k) {
    for (std::uint64_t e = 0; e <= epoch_limit; ++e) {
      const fs::path p = fs::path(opt.trace_dir) /
                         ("i" + std::to_string(run.id) + "_node" +
                          std::to_string(k) + "_e" + std::to_string(e) +
                          ".jsonl");
      if (!fs::exists(p)) continue;
      auto seg = load_segment(p);
      if (seg) {
        if (!have_header) {
          header = seg->header;
          have_header = true;
        }
        per_node[k].push_back(std::move(*seg));
      }
    }
  }
  if (!have_header) return false;

  header.perspective = -1;  // full view: every process appears
  header.clock_rate = 1.0;  // per-recording-node property, meaningless here
  std::ofstream out(out_path);
  if (!out) return false;
  out << obs::to_jsonl(header) << "\n";

  std::uint64_t seq = 0;
  std::size_t decided_nodes = 0;
  bool quiescent = true;
  for (std::size_t k = 0; k < opt.nodes; ++k) {
    const auto& segs = per_node[k];
    for (std::size_t j = 0; j < segs.size(); ++j) {
      if (j > 0) {
        // A later epoch segment exists: the previous incarnation died.
        obs::TraceEvent crash;
        crash.kind = obs::EventKind::kCrash;
        crash.p = k;
        crash.t = segs[j - 1].events.empty() ? 0.0
                                             : segs[j - 1].events.back().t;
        crash.seq = seq++;
        out << obs::to_jsonl(crash) << "\n";
        obs::TraceEvent rec;
        rec.kind = obs::EventKind::kRecover;
        rec.p = k;
        rec.t = segs[j].events.empty() ? crash.t : segs[j].events.front().t;
        rec.seq = seq++;
        out << obs::to_jsonl(rec) << "\n";
      }
      for (obs::TraceEvent e : segs[j].events) {
        e.seq = seq++;
        out << obs::to_jsonl(e) << "\n";
      }
    }
    // The checker's liveness rule counts only each process's LATEST
    // incarnation (a kRecover resets that state): a node that decided in
    // epoch e, died, and re-ran the instance without deciding again is NOT
    // decided in the merged view.
    const bool last_decided = !segs.empty() && segs.back().decided;
    if (last_decided) ++decided_nodes;
    // A killed node with no later-epoch segment for this instance ends the
    // trace crashed; one that recovered (j > 0 above) ends it live.
    const bool ends_crashed =
        run.killed.count(k) != 0 && !last_decided && segs.size() <= 1;
    if (ends_crashed) {
      obs::TraceEvent crash;
      crash.kind = obs::EventKind::kCrash;
      crash.p = k;
      crash.t = segs.empty() || segs.back().events.empty()
                    ? 0.0
                    : segs.back().events.back().t;
      crash.seq = seq++;
      out << obs::to_jsonl(crash) << "\n";
    }
    // Quiescent = every node either decided (latest incarnation) or is
    // down. A recovered node stuck on a re-submitted instance makes the
    // run non-quiescent — the checker then checks safety only, which is
    // the correct contract: ever-crashed processes are liveness-exempt.
    if (!last_decided && !ends_crashed) quiescent = false;
  }

  obs::TraceFooter footer;
  footer.decided = decided_nodes;
  footer.quiescent = quiescent;
  out << obs::to_jsonl(footer) << "\n";
  return true;
}

/// One nemesis cycle's stability sample (soak gates).
struct SoakSample {
  double max_rss_kb = 0.0;
  double max_outq_hwm = 0.0;
};

double mean_of(const std::vector<SoakSample>& v, std::size_t begin,
               std::size_t end, double SoakSample::*field) {
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += v[i].*field;
  return end > begin ? sum / static_cast<double>(end - begin) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") opt.nodes = parse_count(arg, next());
    else if (arg == "--f") opt.f = parse_count(arg, next());
    else if (arg == "--d") opt.d = parse_count(arg, next());
    else if (arg == "--eps") opt.eps = parse_real(arg, next());
    else if (arg == "--instances") opt.instances = parse_count(arg, next());
    else if (arg == "--seed") opt.seed = parse_count(arg, next());
    else if (arg == "--trace-dir") opt.trace_dir = next();
    else if (arg == "--node-bin") opt.node_bin = next();
    else if (arg == "--no-kill") opt.kill = false;
    else if (arg == "--soak") opt.soak = parse_real(arg, next());
    else if (arg == "--timeout") opt.timeout = parse_real(arg, next());
    else if (arg == "--time-scale") {
      opt.time_scale = parse_real(arg, next());
      opt.time_scale_set = true;
    }
    else if (arg == "--report") opt.report = next();
    else if (arg == "--nemesis") opt.nemesis = next();
    else if (arg == "--list-nemesis") opt.list_nemesis = true;
    else if (arg == "--fuzz") opt.fuzz = parse_count(arg, next());
    else if (arg == "--soak-minutes") {
      opt.soak_minutes = parse_real(arg, next());
    }
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (opt.list_nemesis) {
    for (const nemesis::LivePreset& p : nemesis::live_presets()) {
      std::cout << p.name << "\n    " << p.description << "\n";
    }
    return 0;
  }
  const bool nemesis_mode =
      !opt.nemesis.empty() || opt.fuzz > 0 || opt.soak_minutes > 0.0;

  // Resolve the nemesis preset list up front: a typo'd name should die on
  // usage, not after a cluster spawn.
  std::vector<const nemesis::LivePreset*> chosen;
  if (!opt.nemesis.empty()) {
    if (opt.nemesis == "all") {
      for (const nemesis::LivePreset& p : nemesis::live_presets()) {
        chosen.push_back(&p);
      }
    } else {
      const nemesis::LivePreset* p = nemesis::find_live_preset(opt.nemesis);
      if (p == nullptr) {
        std::cerr << "unknown nemesis preset: " << opt.nemesis
                  << " (see --list-nemesis)\n";
        return 2;
      }
      chosen.push_back(p);
    }
  }
  if (nemesis_mode) {
    // Every live preset (and the fuzz sampler) is built for one cluster
    // shape; the scenario's cut/kill targets assume it.
    const nemesis::LivePreset& shape =
        chosen.empty() ? nemesis::live_presets().front() : *chosen.front();
    opt.nodes = shape.n;
    opt.f = shape.f;
    opt.d = shape.d;
    opt.eps = shape.eps;
    // A live preset spans tens of model units and the controller must act
    // MID-protocol: 20 ms/unit paces a 40-unit partition at 0.8 s wall.
    if (!opt.time_scale_set) opt.time_scale = 0.02;
  }

  if (opt.nodes == 0 || opt.instances == 0 || opt.nodes > 32) {
    std::cerr << "implausible --nodes / --instances\n";
    usage();
    return 2;
  }
  if (opt.node_bin.empty()) {
    // Default: chc_node sitting next to this binary.
    opt.node_bin =
        (fs::path(argv[0]).parent_path() / "chc_node").string();
  }
  if (!fs::exists(opt.node_bin)) {
    std::cerr << "node binary not found: " << opt.node_bin
              << " (use --node-bin)\n";
    return 2;
  }
  fs::create_directories(opt.trace_dir);

  bool all_ok = true;
  std::vector<std::string> failures;
  std::vector<InstanceRun> runs;
  std::vector<SoakSample> samples;
  double max_agreement = 0.0;
  std::uint64_t epoch_limit = 16;
  const auto fail = [&](const std::string& why) {
    all_ok = false;
    failures.push_back(why);
    std::cerr << "FAIL: " << why << "\n";
  };

  try {
    Cluster cluster(opt);
    for (std::size_t i = 0; i < opt.nodes; ++i) {
      if (!cluster.spawn(i)) throw std::runtime_error("fork failed");
    }
    for (std::size_t i = 0; i < opt.nodes; ++i) {
      if (!cluster.wait_ready(i)) {
        throw std::runtime_error("node " + std::to_string(i) +
                                 " never became ready");
      }
    }
    std::cout << "cluster up: " << opt.nodes << " nodes\n";

    const auto submit_to_all = [&](const InstanceRun& run) {
      const std::string line = submit_line(opt, run);
      for (std::size_t k = 0; k < cluster.n(); ++k) {
        if (!cluster.alive(k)) continue;
        const auto resp = cluster.rpc(k, line);
        if (!resp || *resp != "OK") {
          fail("SUBMIT i" + std::to_string(run.id) + " to node " +
               std::to_string(k) + " -> " + resp.value_or("(no response)"));
        }
      }
    };

    /// Waits until every node in `required` reports DECIDED for `iid`.
    const auto wait_decided = [&](std::uint64_t iid,
                                  const std::set<std::size_t>& required) {
      const double deadline = mono_now() + opt.timeout;
      std::set<std::size_t> done;
      while (mono_now() < deadline && done.size() < required.size()) {
        for (const std::size_t k : required) {
          if (done.count(k) != 0 || !cluster.alive(k)) continue;
          const auto resp =
              cluster.rpc(k, "STATUS " + std::to_string(iid), 1000);
          if (resp && resp->rfind("DECIDED", 0) == 0) done.insert(k);
          if (resp && *resp == "FAILED") {
            fail("instance " + std::to_string(iid) + " FAILED on node " +
                 std::to_string(k));
            return false;
          }
        }
        if (done.size() < required.size()) sleep_ms(30);
      }
      if (done.size() < required.size()) {
        fail("instance " + std::to_string(iid) + " timed out (" +
             std::to_string(done.size()) + "/" +
             std::to_string(required.size()) + " nodes decided)");
        return false;
      }
      return true;
    };

    /// Pairwise decision agreement across whatever nodes answer DECIDED.
    const auto check_agreement = [&](const InstanceRun& run) {
      std::vector<geo::Polytope> decisions;
      for (std::size_t k = 0; k < cluster.n(); ++k) {
        if (!cluster.alive(k)) continue;
        const auto resp =
            cluster.rpc(k, "STATUS " + std::to_string(run.id), 1000);
        if (!resp) continue;
        const auto verts = parse_decided(*resp);
        if (verts && !verts->empty()) {
          decisions.push_back(geo::Polytope::from_points(*verts));
        }
      }
      for (std::size_t a = 0; a < decisions.size(); ++a) {
        for (std::size_t b = a + 1; b < decisions.size(); ++b) {
          const double dist = geo::hausdorff(decisions[a], decisions[b]);
          max_agreement = std::max(max_agreement, dist);
          if (dist > opt.eps + 1e-6) {
            fail("instance " + std::to_string(run.id) +
                 ": pairwise decision distance " + std::to_string(dist) +
                 " > eps " + std::to_string(opt.eps));
          }
        }
      }
    };

    std::uint64_t next_id = 0;
    std::uint64_t next_seed = opt.seed;

    if (nemesis_mode) {
      /// One preset run end to end: skews applied, schedule anchored and
      /// broadcast, instances submitted at the anchor, actions executed
      /// at anchored wall times, decisions and agreement gated.
      const auto run_cycle = [&](const nemesis::LivePreset& preset,
                                 std::uint64_t scenario_seed) {
        std::cout << "nemesis cycle: " << preset.name << " (seed "
                  << scenario_seed << ")\n";
        std::vector<InstanceRun> wave;
        for (std::size_t i = 0; i < opt.instances; ++i) {
          wave.push_back(
              make_run(opt, next_id++, next_seed++, preset.crash_count));
        }
        const nemesis::Scenario scen =
            preset.build(wave[0].workload.faulty, opt.nodes);
        const nemesis::LivePlan plan =
            nemesis::compile_live(scen, opt.nodes);

        for (std::size_t k = 0; k < cluster.n(); ++k) {
          const auto it = plan.skews.find(k);
          const double rate = it == plan.skews.end() ? 1.0 : it->second;
          if (!cluster.set_clock_rate(k, rate)) {
            throw std::runtime_error("node " + std::to_string(k) +
                                     " did not restart with clock rate " +
                                     std::to_string(rate));
          }
        }

        const double anchor = realtime_now() + kAnchorLeadSec;
        std::string arm_line;
        if (!plan.schedule.empty()) {
          transport::NemesisSpec spec;
          spec.schedule = plan.schedule;
          spec.seed = scenario_seed;
          spec.anchor_realtime_sec = anchor;
          spec.time_scale = opt.time_scale;
          arm_line = "NEMESIS " + transport::encode_nemesis_spec(spec);
          for (std::size_t k = 0; k < cluster.n(); ++k) {
            const auto resp = cluster.rpc(k, arm_line);
            if (!resp || *resp != "OK") {
              fail("NEMESIS arm on node " + std::to_string(k) + " -> " +
                   resp.value_or("(no response)"));
            }
          }
        }

        wait_until_realtime(anchor);
        for (const auto& run : wave) submit_to_all(run);

        std::set<std::size_t> killed_now;
        for (const nemesis::LiveAction& a : plan.actions) {
          wait_until_realtime(anchor + a.at * opt.time_scale);
          switch (a.kind) {
            case nemesis::LiveAction::Kind::kKill:
              cluster.kill_node(a.node);
              killed_now.insert(a.node);
              for (auto& run : wave) run.killed.insert(a.node);
              std::cout << "  t=" << a.at << " SIGKILL node " << a.node
                        << "\n";
              break;
            case nemesis::LiveAction::Kind::kRestart:
              if (!cluster.restart_node(a.node)) {
                throw std::runtime_error("node " + std::to_string(a.node) +
                                         " did not come back");
              }
              std::cout << "  t=" << a.at << " restarted node " << a.node
                        << " (epoch " << cluster.epoch(a.node) << ")\n";
              // Re-arm (the anchor is wall-clock: the new incarnation
              // lands mid-schedule in the right phase) and hand it the
              // in-flight specs; it serves retransmissions and may even
              // finish, but is not REQUIRED to (a recovered process is
              // faulty in the paper's accounting).
              if (!arm_line.empty()) cluster.rpc(a.node, arm_line);
              for (const auto& run : wave) {
                cluster.rpc(a.node, submit_line(opt, run));
              }
              break;
            case nemesis::LiveAction::Kind::kStop:
              cluster.stop_node(a.node);
              std::cout << "  t=" << a.at << " SIGSTOP node " << a.node
                        << "\n";
              break;
            case nemesis::LiveAction::Kind::kCont:
              cluster.cont_node(a.node);
              std::cout << "  t=" << a.at << " SIGCONT node " << a.node
                        << "\n";
              break;
          }
        }
        wait_until_realtime(anchor + plan.quiet_at * opt.time_scale);

        std::set<std::size_t> required;
        for (std::size_t k = 0; k < cluster.n(); ++k) {
          if (killed_now.count(k) == 0) required.insert(k);
        }
        for (const auto& run : wave) wait_decided(run.id, required);
        for (const auto& run : wave) check_agreement(run);

        SoakSample sample;
        for (std::size_t k = 0; k < cluster.n(); ++k) {
          if (!cluster.alive(k)) continue;
          const auto resp = cluster.rpc(k, "STATUS");
          if (resp && resp->rfind("STATS", 0) == 0) {
            sample.max_outq_hwm = std::max(
                sample.max_outq_hwm,
                static_cast<double>(stats_value(*resp, "outq_hwm_bytes")));
          }
          sample.max_rss_kb =
              std::max(sample.max_rss_kb, read_rss_kb(cluster.pid(k)));
          cluster.rpc(k, "NEMESIS OFF");
        }
        samples.push_back(sample);

        // Heal for the next cycle: revive anything the plan left dead.
        for (const std::size_t k : killed_now) {
          if (!cluster.alive(k) && !cluster.restart_node(k)) {
            throw std::runtime_error("node " + std::to_string(k) +
                                     " did not come back after the cycle");
          }
        }
        for (auto& run : wave) runs.push_back(std::move(run));
      };

      if (!chosen.empty()) {
        for (std::size_t i = 0; i < chosen.size() && all_ok; ++i) {
          run_cycle(*chosen[i], opt.seed + i);
        }
      } else if (opt.fuzz > 0) {
        for (std::uint64_t c = 0; c < opt.fuzz && all_ok; ++c) {
          run_cycle(nemesis::sample_live_preset(opt.seed + c), opt.seed + c);
        }
      } else {
        const double deadline = mono_now() + opt.soak_minutes * 60.0;
        std::uint64_t c = 0;
        while (mono_now() < deadline && all_ok) {
          run_cycle(nemesis::sample_live_preset(opt.seed + c), opt.seed + c);
          ++c;
        }
        std::cout << "soak: " << c << " cycles in " << opt.soak_minutes
                  << " minutes\n";
      }
    } else {
      const double soak_deadline =
          opt.soak > 0.0 ? mono_now() + opt.soak : mono_now();
      std::size_t cycle = 0;
      // Normal mode runs exactly one kill/recover cycle (wave 1 + wave 2);
      // soak mode repeats cycles until its deadline.
      do {
        // --- wave 1: submit, kill the faulty node mid-run, finish -------
        std::vector<InstanceRun> wave1;
        for (std::size_t i = 0; i < opt.instances; ++i) {
          wave1.push_back(make_run(opt, next_id++, next_seed++, opt.f));
        }
        for (const auto& run : wave1) submit_to_all(run);

        std::optional<std::size_t> victim;
        if (opt.kill && opt.f > 0 && !wave1[0].workload.faulty.empty()) {
          victim = static_cast<std::size_t>(wave1[0].workload.faulty[0]);
          // Randomized dwell (seeded, reproducible): somewhere between
          // submit and typical decide time, so the kill lands
          // mid-protocol.
          Rng kill_rng(next_seed * 7919 + cycle);
          sleep_ms(20 + static_cast<int>(kill_rng.uniform() * 150.0));
          cluster.kill_node(*victim);
          for (auto& run : wave1) run.killed.insert(*victim);
          std::cout << "killed node " << *victim << " (cycle " << cycle
                    << ")\n";
        }

        std::set<std::size_t> survivors;
        for (std::size_t k = 0; k < cluster.n(); ++k) {
          if (cluster.alive(k)) survivors.insert(k);
        }
        for (const auto& run : wave1) wait_decided(run.id, survivors);

        // --- recover, then wave 2 must include the restarted node -------
        if (victim) {
          if (!cluster.restart_node(*victim)) {
            throw std::runtime_error("node " + std::to_string(*victim) +
                                     " did not come back");
          }
          std::cout << "restarted node " << *victim << " (epoch "
                    << cluster.epoch(*victim) << ")\n";
          // Hand the wave-1 specs to the new incarnation too: it serves
          // its peers' retransmissions and may finish late; it is not
          // REQUIRED to (a recovered process is faulty in the paper's
          // accounting).
          for (const auto& run : wave1) {
            cluster.rpc(*victim, submit_line(opt, run));
          }
        }

        std::vector<InstanceRun> wave2;
        for (std::size_t i = 0; i < opt.instances; ++i) {
          wave2.push_back(make_run(opt, next_id++, next_seed++, opt.f));
        }
        for (const auto& run : wave2) submit_to_all(run);
        std::set<std::size_t> everyone;
        for (std::size_t k = 0; k < cluster.n(); ++k) everyone.insert(k);
        for (const auto& run : wave2) {
          // Full rejoin proof: the restarted node decides these too.
          wait_decided(run.id, everyone);
        }

        for (const auto* wave : {&wave1, &wave2}) {
          for (const auto& run : *wave) check_agreement(run);
        }
        for (auto& run : wave1) runs.push_back(std::move(run));
        for (auto& run : wave2) runs.push_back(std::move(run));
        ++cycle;
      } while (opt.soak > 0.0 && mono_now() < soak_deadline && all_ok);
    }

    epoch_limit = std::max<std::uint64_t>(epoch_limit, cluster.max_epoch());
    cluster.shutdown_all();
    std::cout << "cluster down; verifying traces\n";
  } catch (const std::exception& ex) {
    fail(ex.what());
  }

  // --- soak stability gates ----------------------------------------------
  if (!samples.empty()) {
    double max_outq = 0.0, max_rss = 0.0;
    for (const SoakSample& s : samples) {
      max_outq = std::max(max_outq, s.max_outq_hwm);
      max_rss = std::max(max_rss, s.max_rss_kb);
    }
    std::cout << "stability: " << samples.size() << " cycles, outq hwm "
              << max_outq << " B, peak RSS " << max_rss << " kB\n";
    if (max_outq > kOutqCapBytes) {
      fail("send-queue high-water " + std::to_string(max_outq) +
           " B exceeds the " + std::to_string(kOutqCapBytes) + " B bound");
    }
    if (opt.soak_minutes > 0.0 && samples.size() >= 6) {
      const std::size_t third = samples.size() / 3;
      const double rss_early =
          mean_of(samples, 0, third, &SoakSample::max_rss_kb);
      const double rss_late =
          mean_of(samples, samples.size() - third, samples.size(),
                  &SoakSample::max_rss_kb);
      // Slack: allocator warm-up and trace buffers legitimately grow a
      // little; an unbounded leak blows far past 1.5x + 16 MiB.
      if (rss_late > rss_early * 1.5 + 16384.0) {
        fail("soak RSS drift: first-third mean " +
             std::to_string(rss_early) + " kB -> last-third mean " +
             std::to_string(rss_late) + " kB");
      }
      const double outq_early =
          mean_of(samples, 0, third, &SoakSample::max_outq_hwm);
      const double outq_late =
          mean_of(samples, samples.size() - third, samples.size(),
                  &SoakSample::max_outq_hwm);
      if (outq_late > outq_early * 2.0 + 1024.0 * 1024.0) {
        fail("soak outq hwm drift: first-third mean " +
             std::to_string(outq_early) + " B -> last-third mean " +
             std::to_string(outq_late) + " B");
      }
    }
  }

  // --- offline verification: per-node traces + merged full-view traces --
  std::size_t traces_checked = 0;
  obs::CheckOptions copts;
  for (const auto& run : runs) {
    for (const auto& entry : fs::directory_iterator(opt.trace_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("i" + std::to_string(run.id) + "_node", 0) != 0 ||
          entry.path().extension() != ".jsonl") {
        continue;
      }
      const auto report = obs::check_trace_file(entry.path().string(), copts);
      ++traces_checked;
      if (!report.parsed) {
        fail(name + ": " + report.parse_error);
      } else if (!report.ok()) {
        fail(name + ": " + obs::describe(report.violations.front()));
      }
    }
    const fs::path merged =
        fs::path(opt.trace_dir) / ("merged_i" + std::to_string(run.id) +
                                   ".jsonl");
    if (!merge_instance_traces(opt, run, epoch_limit, merged)) {
      fail("could not merge traces of instance " + std::to_string(run.id));
      continue;
    }
    const auto report = obs::check_trace_file(merged.string(), copts);
    ++traces_checked;
    if (!report.parsed) {
      fail(merged.filename().string() + ": " + report.parse_error);
    } else if (!report.ok()) {
      fail(merged.filename().string() + ": " +
           obs::describe(report.violations.front()));
    }
  }

  std::cout << (all_ok ? "PASS" : "FAIL") << ": " << runs.size()
            << " instances, " << traces_checked
            << " traces checked, max pairwise decision distance "
            << max_agreement << "\n";

  if (!opt.report.empty()) {
    std::ofstream rep(opt.report);
    rep << "{\"ok\": " << (all_ok ? "true" : "false")
        << ", \"instances\": " << runs.size()
        << ", \"traces_checked\": " << traces_checked
        << ", \"max_agreement\": " << max_agreement
        << ", \"nemesis_cycles\": " << samples.size() << ", \"failures\": [";
    for (std::size_t i = 0; i < failures.size(); ++i) {
      if (i != 0) rep << ", ";
      std::string esc;
      for (char ch : failures[i]) {
        if (ch == '"' || ch == '\\') esc += '\\';
        esc += ch;
      }
      rep << '"' << esc << '"';
    }
    rep << "]}\n";
  }
  return all_ok ? 0 : 1;
}
