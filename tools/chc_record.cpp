// chc_record: runs Algorithm CC executions with structured tracing on and
// writes JSONL traces (plus an optional run report) for chc_check / CI.
//
//   chc_record --out FILE [options]            one traced run
//   chc_record --fuzz N --out-dir DIR [opts]   N sampled lossy adversaries
//
// Presets cover the acceptance matrix: a default fault-free-ish run, a
// crash-faulty run, and a lossy run behind the reliable-channel shim. The
// fuzz mode mirrors the adversary fuzzer's sampling envelope
// (tests/net/adversary_fuzz_test.cpp): drop in [0.02, 0.30], dup in
// [0, 0.10], reorder in [0, 0.20], random crash style and delay regime,
// always shimmed so every execution decides.
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/lossy.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace chc;

void usage() {
  std::cerr
      << "usage:\n"
         "  chc_record --out FILE [--preset default|crash|lossy]\n"
         "             [--seed N] [--n N --f N --d D --eps E]\n"
         "             [--crash none|early|mid|late]\n"
         "             [--delay uniform|exp|lagged-faulty|lagged-one]\n"
         "             [--drop P --dup P --reorder P] [--unreliable]\n"
         "             [--report FILE]\n"
         "  chc_record --fuzz N --out-dir DIR [--seed BASE]\n";
}

/// Strict numeric argument parsing: the whole value must be digits.
/// std::stoul alone would throw an uncaught exception on garbage (or
/// silently accept "5x"), turning a typo into a crash instead of usage.
std::uint64_t parse_count(const std::string& opt, const std::string& val) {
  std::uint64_t v = 0;
  bool ok = !val.empty();
  for (char ch : val) {
    if (ch < '0' || ch > '9' || v > (UINT64_MAX - 9) / 10) {
      ok = false;
      break;
    }
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  if (!ok) {
    std::cerr << opt << " needs a non-negative integer, got '" << val
              << "'\n";
    usage();
    std::exit(2);
  }
  return v;
}

/// Same contract for real-valued options: the whole value must parse.
double parse_real(const std::string& opt, const std::string& val) {
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  if (val.empty() || end == nullptr || *end != '\0' || !std::isfinite(v)) {
    std::cerr << opt << " needs a finite number, got '" << val << "'\n";
    usage();
    std::exit(2);
  }
  return v;
}

struct Cli {
  std::string out;
  std::string out_dir;
  std::string report;
  std::string preset = "default";
  std::uint64_t seed = 1;
  std::size_t fuzz = 0;
  core::LossyRunConfig lc;
  bool have_crash = false, have_delay = false, have_policy = false;
  bool unreliable = false;
};

bool parse_crash(const std::string& s, core::CrashStyle& out) {
  if (s == "none") out = core::CrashStyle::kNone;
  else if (s == "early") out = core::CrashStyle::kEarly;
  else if (s == "mid") out = core::CrashStyle::kMidBroadcast;
  else if (s == "late") out = core::CrashStyle::kLate;
  else return false;
  return true;
}

bool parse_delay(const std::string& s, core::DelayRegime& out) {
  if (s == "uniform") out = core::DelayRegime::kUniform;
  else if (s == "exp") out = core::DelayRegime::kExponential;
  else if (s == "lagged-faulty") out = core::DelayRegime::kLaggedFaulty;
  else if (s == "lagged-one") out = core::DelayRegime::kLaggedOneCorrect;
  else return false;
  return true;
}

/// One traced execution; returns false when the certificate is incomplete
/// (still writes the trace — failing traces are exactly the interesting
/// ones to archive).
bool record_one(const core::LossyRunConfig& lc, const std::string& path,
                const std::string& report_path) {
  obs::JsonlFileSink sink(path);
  obs::Tracer tracer(&sink);
  obs::Registry metrics;
  core::LossyRunConfig traced = lc;
  traced.tracer = &tracer;
  traced.metrics = &metrics;

  const core::Workload workload = core::make_workload(
      traced.base.cc.n, traced.base.cc.f, traced.base.cc.d,
      traced.base.pattern, traced.base.seed,
      traced.base.cc.fault_model == core::FaultModel::kCrashIncorrectInputs);
  const core::LossyRunOutput out = core::run_cc_lossy_custom(traced, workload);
  sink.flush();

  if (!report_path.empty()) {
    std::ofstream rep(report_path);
    rep << core::run_report_json(out, &metrics) << "\n";
  }

  const bool ok = out.quiescent && out.cert.all_decided &&
                  out.cert.validity && out.cert.agreement;
  std::cout << (ok ? "ok      " : "FAILED  ") << path
            << " seed=" << lc.base.seed << " rounds=" << out.cert.rounds
            << " d_H=" << out.cert.max_pairwise_hausdorff
            << " dropped=" << out.stats.net_dropped
            << " retransmits=" << out.stats.retransmits << "\n";
  return ok;
}

core::LossyRunConfig fuzz_config(std::uint64_t seed) {
  Rng rng(seed);
  core::LossyRunConfig lc;
  lc.base.cc = core::CCConfig{.n = 5, .f = 1, .d = 2, .eps = 0.15};
  lc.base.seed = seed;
  const double drop = rng.uniform(0.02, 0.30);
  const double dup = rng.uniform(0.0, 0.10);
  const double reorder = rng.uniform(0.0, 0.20);
  static constexpr core::CrashStyle kStyles[] = {
      core::CrashStyle::kNone, core::CrashStyle::kEarly,
      core::CrashStyle::kMidBroadcast, core::CrashStyle::kLate};
  lc.base.crash_style = kStyles[rng.uniform_int(0, 3)];
  lc.base.delay = rng.bernoulli(0.5) ? core::DelayRegime::kUniform
                                     : core::DelayRegime::kExponential;
  lc.policy = net::NetworkPolicy::lossy(drop, dup, reorder);
  lc.reliable = true;
  return lc;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.lc.base.cc = core::CCConfig{.n = 5, .f = 1, .d = 2, .eps = 0.15};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") cli.out = next();
    else if (arg == "--out-dir") cli.out_dir = next();
    else if (arg == "--report") cli.report = next();
    else if (arg == "--preset") cli.preset = next();
    else if (arg == "--seed") cli.seed = parse_count(arg, next());
    else if (arg == "--fuzz") cli.fuzz = parse_count(arg, next());
    else if (arg == "--n") cli.lc.base.cc.n = parse_count(arg, next());
    else if (arg == "--f") cli.lc.base.cc.f = parse_count(arg, next());
    else if (arg == "--d") cli.lc.base.cc.d = parse_count(arg, next());
    else if (arg == "--eps") cli.lc.base.cc.eps = parse_real(arg, next());
    else if (arg == "--crash") {
      cli.have_crash = true;
      if (!parse_crash(next(), cli.lc.base.crash_style)) {
        std::cerr << "bad --crash value\n";
        return 2;
      }
    } else if (arg == "--delay") {
      cli.have_delay = true;
      if (!parse_delay(next(), cli.lc.base.delay)) {
        std::cerr << "bad --delay value\n";
        return 2;
      }
    } else if (arg == "--drop") {
      cli.have_policy = true;
      cli.lc.policy.link.drop_rate = parse_real(arg, next());
    } else if (arg == "--dup") {
      cli.have_policy = true;
      cli.lc.policy.link.dup_rate = parse_real(arg, next());
    } else if (arg == "--reorder") {
      cli.have_policy = true;
      cli.lc.policy.link.reorder_rate = parse_real(arg, next());
    } else if (arg == "--unreliable") {
      cli.unreliable = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }

  if (cli.fuzz > 0) {
    if (cli.out_dir.empty()) {
      usage();
      return 2;
    }
    std::filesystem::create_directories(cli.out_dir);
    std::size_t failed = 0;
    for (std::size_t i = 0; i < cli.fuzz; ++i) {
      const std::uint64_t seed = cli.seed + i;
      const core::LossyRunConfig lc = fuzz_config(seed);
      const std::string path =
          cli.out_dir + "/trace_" + std::to_string(seed) + ".jsonl";
      if (!record_one(lc, path, "")) ++failed;
    }
    std::cout << (cli.fuzz - failed) << "/" << cli.fuzz
              << " fuzz runs earned the full certificate\n";
    return failed == 0 ? 0 : 1;
  }

  if (cli.out.empty()) {
    usage();
    return 2;
  }

  core::LossyRunConfig lc = cli.lc;
  lc.base.seed = cli.seed;
  if (cli.preset == "default") {
    // Fault-free-looking config (f=1 but nobody crashes) on clean links.
    if (!cli.have_crash) lc.base.crash_style = core::CrashStyle::kNone;
    if (!cli.have_policy) lc.reliable = false;
  } else if (cli.preset == "crash") {
    if (!cli.have_crash) lc.base.crash_style = core::CrashStyle::kMidBroadcast;
    if (!cli.have_delay) lc.base.delay = core::DelayRegime::kLaggedOneCorrect;
    if (!cli.have_policy) lc.reliable = false;
  } else if (cli.preset == "lossy") {
    if (!cli.have_crash) lc.base.crash_style = core::CrashStyle::kEarly;
    if (!cli.have_policy) {
      lc.policy = net::NetworkPolicy::lossy(0.15, 0.05, 0.10);
    }
    lc.reliable = true;
  } else {
    std::cerr << "unknown preset: " << cli.preset << "\n";
    return 2;
  }
  if (cli.unreliable) lc.reliable = false;
  if (cli.have_policy && !cli.unreliable) lc.reliable = true;

  return record_one(lc, cli.out, cli.report) ? 0 : 1;
}
