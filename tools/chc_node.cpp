// chc_node: one consensus process of a real multi-node cluster.
//
//   chc_node --id I --cluster host:port,host:port,...
//            [--client-port P] [--epoch E] [--trace-dir DIR]
//            [--time-scale S]
//
// Speaks the RelFrame codec over TCP to its peers (transport/tcp) and a
// line RPC to clients on 127.0.0.1:P (0 = ephemeral; the chosen port is in
// the READY line). Runs any number of Algorithm CC instances concurrently;
// each instance writes a per-node JSONL trace (env=live, perspective=I)
// that tools/chc_check verifies offline.
//
// RPC protocol (one request line -> one response line):
//   PING
//     -> PONG <id> <epoch>
//   SUBMIT <iid> <n> <f> <d> <eps> <seed> <magnitude> <nf> <faulty...>
//          <n*d input coordinates, row-major>
//     -> OK | ERR <reason>          (idempotent per <iid>)
//   STATUS <iid>
//     -> UNKNOWN | RUNNING <round> | FAILED
//      | DECIDED <round> <nverts> <d> <coords...>
//   SHUTDOWN
//     -> BYE                        (footers written, process exits 0)
//
// Crash testing: SIGKILL is the intended crash switch — no handler runs,
// in-flight state dies, the trace keeps every fully written line. Restart
// with --epoch E+1 and peers' reliable channels resynchronize.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "transport/node.hpp"
#include "transport/rpc.hpp"
#include "transport/tcp.hpp"

namespace {

using namespace chc;

void usage() {
  std::cerr
      << "usage: chc_node --id I --cluster host:port,...\n"
         "                [--client-port P] [--epoch E] [--trace-dir DIR]\n"
         "                [--time-scale SECONDS_PER_MODEL_UNIT]\n";
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9' || out > (UINT64_MAX - 9) / 10) return false;
    out = out * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

bool parse_f64(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

/// SUBMIT argument vector -> InstanceSpec. Returns an error string, empty
/// on success.
std::string parse_submit(const std::vector<std::string>& tok,
                         transport::InstanceSpec& spec) {
  // SUBMIT iid n f d eps seed magnitude nf faulty... coords...
  if (tok.size() < 9) return "SUBMIT needs at least 8 arguments";
  std::uint64_t n = 0, f = 0, d = 0, nf = 0;
  double eps = 0.0, mag = 0.0;
  if (!parse_u64(tok[1], spec.id) || !parse_u64(tok[2], n) ||
      !parse_u64(tok[3], f) || !parse_u64(tok[4], d) ||
      !parse_f64(tok[5], eps) || !parse_u64(tok[6], spec.seed) ||
      !parse_f64(tok[7], mag) || !parse_u64(tok[8], nf)) {
    return "malformed SUBMIT scalar";
  }
  if (n == 0 || n > 64 || d == 0 || d > 8 || eps <= 0.0 || mag <= 0.0) {
    return "implausible instance parameters";
  }
  const std::size_t want = 9 + nf + n * d;
  if (tok.size() != want) return "SUBMIT argument count mismatch";
  spec.cc.n = n;
  spec.cc.f = f;
  spec.cc.d = d;
  spec.cc.eps = eps;
  spec.cc.input_magnitude = mag;
  spec.faulty.clear();
  for (std::uint64_t i = 0; i < nf; ++i) {
    std::uint64_t p = 0;
    if (!parse_u64(tok[9 + i], p) || p >= n) return "bad faulty id";
    spec.faulty.push_back(p);
  }
  spec.inputs.clear();
  std::size_t at = 9 + nf;
  for (std::uint64_t p = 0; p < n; ++p) {
    geo::Vec v(d);
    for (std::uint64_t k = 0; k < d; ++k) {
      if (!parse_f64(tok[at++], v[k])) return "bad input coordinate";
    }
    spec.inputs.push_back(std::move(v));
  }
  return "";
}

std::string format_status(const transport::NodeRuntime::InstanceStatus& s) {
  if (!s.known) return "UNKNOWN";
  if (s.failed) return "FAILED";
  if (!s.decided) return "RUNNING " + std::to_string(s.round);
  std::ostringstream os;
  os.precision(17);
  const std::size_t d = s.decision.empty() ? 0 : s.decision[0].dim();
  os << "DECIDED " << s.round << ' ' << s.decision.size() << ' ' << d;
  for (const geo::Vec& v : s.decision) {
    for (std::size_t k = 0; k < v.dim(); ++k) os << ' ' << v[k];
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t id = UINT64_MAX;
  std::uint64_t epoch = 0;
  std::uint64_t client_port = 0;
  double time_scale = 2e-3;
  std::string cluster_spec;
  std::string trace_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    bool ok = true;
    if (arg == "--id") ok = parse_u64(next(), id);
    else if (arg == "--cluster") cluster_spec = next();
    else if (arg == "--client-port") ok = parse_u64(next(), client_port);
    else if (arg == "--epoch") ok = parse_u64(next(), epoch);
    else if (arg == "--trace-dir") trace_dir = next();
    else if (arg == "--time-scale") ok = parse_f64(next(), time_scale);
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
    if (!ok || client_port > 65535) {
      std::cerr << "bad value for " << arg << "\n";
      usage();
      return 2;
    }
  }

  std::string err;
  const std::vector<transport::PeerAddr> cluster =
      transport::parse_cluster_spec(cluster_spec, &err);
  if (cluster.empty()) {
    std::cerr << "bad --cluster: " << err << "\n";
    usage();
    return 2;
  }
  if (id >= cluster.size()) {
    std::cerr << "--id must index into --cluster\n";
    usage();
    return 2;
  }

  try {
    transport::TcpTransport tcp(id, cluster,
                                static_cast<std::uint32_t>(epoch));
    transport::NodeConfig ncfg;
    ncfg.id = id;
    ncfg.n = cluster.size();
    ncfg.epoch = static_cast<std::uint32_t>(epoch);
    ncfg.time_scale = time_scale;
    ncfg.trace_dir = trace_dir;
    transport::NodeRuntime node(ncfg, tcp);
    transport::LineServer rpc(static_cast<std::uint16_t>(client_port));

    std::cout << "READY id=" << id << " epoch=" << epoch
              << " peer_port=" << tcp.listen_port()
              << " rpc_port=" << rpc.port() << std::endl;

    bool shutdown = false;
    const auto handler = [&](const std::string& line) -> std::string {
      const std::vector<std::string> tok = split_ws(line);
      if (tok.empty()) return "ERR empty request";
      if (tok[0] == "PING") {
        return "PONG " + std::to_string(id) + ' ' + std::to_string(epoch);
      }
      if (tok[0] == "SUBMIT") {
        transport::InstanceSpec spec;
        const std::string e = parse_submit(tok, spec);
        if (!e.empty()) return "ERR " + e;
        if (spec.cc.n != cluster.size()) return "ERR n != cluster size";
        try {
          node.start_instance(spec);
        } catch (const std::exception& ex) {
          return std::string("ERR ") + ex.what();
        }
        return "OK";
      }
      if (tok[0] == "STATUS" && tok.size() == 2) {
        std::uint64_t iid = 0;
        if (!parse_u64(tok[1], iid)) return "ERR bad instance id";
        return format_status(node.status(iid));
      }
      if (tok[0] == "SHUTDOWN") {
        shutdown = true;
        return "BYE";
      }
      return "ERR unknown request";
    };

    while (!shutdown) {
      rpc.poll(0, handler);
      // step() sleeps up to 1 ms when idle, so the loop neither spins nor
      // adds meaningful latency to RPC handling.
      node.step(1);
    }
    node.shutdown();
    return 0;
  } catch (const std::exception& ex) {
    std::cerr << "chc_node: " << ex.what() << "\n";
    return 1;
  }
}
