// chc_node: one consensus process of a real multi-node cluster.
//
//   chc_node --id I --cluster host:port,host:port,...
//            [--client-port P] [--epoch E] [--trace-dir DIR]
//            [--time-scale S] [--clock-rate R]
//
// Speaks the RelFrame codec over TCP to its peers (transport/tcp) and a
// line RPC to clients on 127.0.0.1:P (0 = ephemeral; the chosen port is in
// the READY line). Runs any number of Algorithm CC instances concurrently;
// each instance writes a per-node JSONL trace (env=live, perspective=I)
// that tools/chc_check verifies offline. The transport is wrapped in a
// FaultyTransport decorator, passthrough until a NEMESIS request arms it.
//
// RPC protocol (one request line -> one response line):
//   PING
//     -> PONG <id> <epoch>
//   SUBMIT <iid> <n> <f> <d> <eps> <seed> <magnitude> <nf> <faulty...>
//          <n*d input coordinates, row-major>
//     -> OK | ERR <reason>          (idempotent per <iid>)
//   STATUS <iid>
//     -> UNKNOWN | RUNNING <round> | FAILED
//      | DECIDED <round> <nverts> <d> <coords...>
//   STATUS
//     -> STATS key=value ...        (transport / shim / nemesis counters)
//   METRICS
//     -> one-line JSON obs::Registry dump of the same counters
//   NEMESIS seed <s> scale <t> anchor <a> phases <k> ...
//     -> OK | ERR <reason>          (arms the fault schedule; see
//                                    transport::parse_nemesis_spec)
//   NEMESIS OFF
//     -> OK                         (disarms)
//   SHUTDOWN
//     -> BYE                        (footers written, process exits 0)
//
// Crash testing: SIGKILL is the intended crash switch — no handler runs,
// in-flight state dies, the trace keeps every fully written line. Restart
// with --epoch E+1 and peers' reliable channels resynchronize. SIGTERM /
// SIGINT by contrast shut down CLEANLY: the loop drains, footers are
// flushed and sockets closed, so only SIGKILL produces torn trace tails.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "transport/faulty.hpp"
#include "transport/node.hpp"
#include "transport/rpc.hpp"
#include "transport/tcp.hpp"

namespace {

using namespace chc;

volatile std::sig_atomic_t g_stop_signal = 0;

void on_stop_signal(int sig) { g_stop_signal = sig; }

void install_signal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll() returns EINTR -> loop notices
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void usage() {
  std::cerr
      << "usage: chc_node --id I --cluster host:port,...\n"
         "                [--client-port P] [--epoch E] [--trace-dir DIR]\n"
         "                [--time-scale SECONDS_PER_MODEL_UNIT]\n"
         "                [--clock-rate MULTIPLIER]\n";
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9' || out > (UINT64_MAX - 9) / 10) return false;
    out = out * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

bool parse_f64(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

/// SUBMIT argument vector -> InstanceSpec. Returns an error string, empty
/// on success.
std::string parse_submit(const std::vector<std::string>& tok,
                         transport::InstanceSpec& spec) {
  // SUBMIT iid n f d eps seed magnitude nf faulty... coords...
  if (tok.size() < 9) return "SUBMIT needs at least 8 arguments";
  std::uint64_t n = 0, f = 0, d = 0, nf = 0;
  double eps = 0.0, mag = 0.0;
  if (!parse_u64(tok[1], spec.id) || !parse_u64(tok[2], n) ||
      !parse_u64(tok[3], f) || !parse_u64(tok[4], d) ||
      !parse_f64(tok[5], eps) || !parse_u64(tok[6], spec.seed) ||
      !parse_f64(tok[7], mag) || !parse_u64(tok[8], nf)) {
    return "malformed SUBMIT scalar";
  }
  if (n == 0 || n > 64 || d == 0 || d > 8 || eps <= 0.0 || mag <= 0.0) {
    return "implausible instance parameters";
  }
  const std::size_t want = 9 + nf + n * d;
  if (tok.size() != want) return "SUBMIT argument count mismatch";
  spec.cc.n = n;
  spec.cc.f = f;
  spec.cc.d = d;
  spec.cc.eps = eps;
  spec.cc.input_magnitude = mag;
  spec.faulty.clear();
  for (std::uint64_t i = 0; i < nf; ++i) {
    std::uint64_t p = 0;
    if (!parse_u64(tok[9 + i], p) || p >= n) return "bad faulty id";
    spec.faulty.push_back(p);
  }
  spec.inputs.clear();
  std::size_t at = 9 + nf;
  for (std::uint64_t p = 0; p < n; ++p) {
    geo::Vec v(d);
    for (std::uint64_t k = 0; k < d; ++k) {
      if (!parse_f64(tok[at++], v[k])) return "bad input coordinate";
    }
    spec.inputs.push_back(std::move(v));
  }
  return "";
}

/// The robustness counters, once, into whichever consumer asks: the STATS
/// text reply and the obs::Registry JSON both read from here so they can
/// never disagree.
struct NodeCounters {
  std::vector<std::pair<std::string, std::uint64_t>> vals;

  void add(const char* name, std::uint64_t v) { vals.emplace_back(name, v); }

  std::string to_stats_line() const {
    std::ostringstream os;
    os << "STATS";
    for (const auto& [k, v] : vals) os << ' ' << k << '=' << v;
    return os.str();
  }

  void to_registry(obs::Registry& reg) const {
    for (const auto& [k, v] : vals) {
      // Counters are monotonic; gauges carry the rest (high-water marks
      // and point-in-time depths can move both ways across epochs).
      reg.gauge("node." + k).set(static_cast<double>(v));
    }
  }
};

NodeCounters collect_counters(const transport::TcpTransport& tcp,
                              const transport::FaultyTransport& faulty,
                              const transport::NodeRuntime& node) {
  NodeCounters c;
  const transport::TcpTransport::Stats& t = tcp.stats();
  c.add("dials", t.dials);
  c.add("accepts", t.accepts);
  c.add("conn_errors", t.conn_errors);
  c.add("frames_sent", t.frames_sent);
  c.add("frames_dropped", t.frames_dropped);
  c.add("frames_received", t.frames_received);
  c.add("frames_corrupted", t.frames_corrupted);
  c.add("outq_hwm_bytes", t.outq_hwm_bytes);
  const transport::FaultyTransport::Stats& f = faulty.stats();
  c.add("inj_drops", f.injected_drops);
  c.add("inj_dups", f.injected_dups);
  c.add("inj_delays", f.injected_delays);
  c.add("inj_released", f.released);
  c.add("inj_parked", faulty.parked());
  const net::ShimStats s = node.shim_stats();
  c.add("rel_data_sent", s.data_sent);
  c.add("rel_retransmits", s.retransmits);
  c.add("rel_delivered", s.delivered);
  c.add("rel_dups_suppressed", s.dups_suppressed);
  c.add("rel_stale_epoch_dropped", s.stale_epoch_dropped);
  c.add("rel_channel_resets", s.channel_resets);
  c.add("rel_channels_abandoned", s.channels_abandoned);
  c.add("instances", node.instance_count());
  c.add("decided", node.decided_count());
  return c;
}

std::string format_status(const transport::NodeRuntime::InstanceStatus& s) {
  if (!s.known) return "UNKNOWN";
  if (s.failed) return "FAILED";
  if (!s.decided) return "RUNNING " + std::to_string(s.round);
  std::ostringstream os;
  os.precision(17);
  const std::size_t d = s.decision.empty() ? 0 : s.decision[0].dim();
  os << "DECIDED " << s.round << ' ' << s.decision.size() << ' ' << d;
  for (const geo::Vec& v : s.decision) {
    for (std::size_t k = 0; k < v.dim(); ++k) os << ' ' << v[k];
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t id = UINT64_MAX;
  std::uint64_t epoch = 0;
  std::uint64_t client_port = 0;
  double time_scale = 2e-3;
  double clock_rate = 1.0;
  std::string cluster_spec;
  std::string trace_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    bool ok = true;
    if (arg == "--id") ok = parse_u64(next(), id);
    else if (arg == "--cluster") cluster_spec = next();
    else if (arg == "--client-port") ok = parse_u64(next(), client_port);
    else if (arg == "--epoch") ok = parse_u64(next(), epoch);
    else if (arg == "--trace-dir") trace_dir = next();
    else if (arg == "--time-scale") ok = parse_f64(next(), time_scale);
    else if (arg == "--clock-rate") {
      ok = parse_f64(next(), clock_rate) && clock_rate > 0.0;
    }
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
    if (!ok || client_port > 65535) {
      std::cerr << "bad value for " << arg << "\n";
      usage();
      return 2;
    }
  }

  std::string err;
  const std::vector<transport::PeerAddr> cluster =
      transport::parse_cluster_spec(cluster_spec, &err);
  if (cluster.empty()) {
    std::cerr << "bad --cluster: " << err << "\n";
    usage();
    return 2;
  }
  if (id >= cluster.size()) {
    std::cerr << "--id must index into --cluster\n";
    usage();
    return 2;
  }

  install_signal_handlers();

  try {
    transport::TcpTransport tcp(id, cluster,
                                static_cast<std::uint32_t>(epoch));
    transport::FaultyTransport faulty(tcp);
    transport::NodeConfig ncfg;
    ncfg.id = id;
    ncfg.n = cluster.size();
    ncfg.epoch = static_cast<std::uint32_t>(epoch);
    ncfg.time_scale = time_scale;
    ncfg.clock_rate = clock_rate;
    ncfg.trace_dir = trace_dir;
    transport::NodeRuntime node(ncfg, faulty);
    transport::LineServer rpc(static_cast<std::uint16_t>(client_port));

    std::cout << "READY id=" << id << " epoch=" << epoch
              << " peer_port=" << tcp.listen_port()
              << " rpc_port=" << rpc.port() << std::endl;

    bool shutdown = false;
    const auto handler = [&](const std::string& line) -> std::string {
      const std::vector<std::string> tok = split_ws(line);
      if (tok.empty()) return "ERR empty request";
      if (tok[0] == "PING") {
        return "PONG " + std::to_string(id) + ' ' + std::to_string(epoch);
      }
      if (tok[0] == "SUBMIT") {
        transport::InstanceSpec spec;
        const std::string e = parse_submit(tok, spec);
        if (!e.empty()) return "ERR " + e;
        if (spec.cc.n != cluster.size()) return "ERR n != cluster size";
        try {
          node.start_instance(spec);
        } catch (const std::exception& ex) {
          return std::string("ERR ") + ex.what();
        }
        return "OK";
      }
      if (tok[0] == "STATUS" && tok.size() == 2) {
        std::uint64_t iid = 0;
        if (!parse_u64(tok[1], iid)) return "ERR bad instance id";
        return format_status(node.status(iid));
      }
      if (tok[0] == "STATUS" && tok.size() == 1) {
        return collect_counters(tcp, faulty, node).to_stats_line();
      }
      if (tok[0] == "METRICS") {
        obs::Registry reg;
        collect_counters(tcp, faulty, node).to_registry(reg);
        reg.gauge("node.model_now").set(node.model_now());
        reg.gauge("node.clock_rate").set(clock_rate);
        return reg.to_json();
      }
      if (tok[0] == "NEMESIS") {
        if (tok.size() < 2) return "ERR bad nemesis spec";
        if (tok.size() == 2 && tok[1] == "OFF") {
          faulty.clear_schedule();
          node.set_nemesis_phases({});
          return "OK";
        }
        const auto spec = transport::parse_nemesis_spec(
            line.substr(line.find("NEMESIS") + 8));
        if (!spec) return "ERR bad nemesis spec";
        faulty.set_schedule(spec->schedule, spec->anchor_realtime_sec,
                            spec->seed, spec->time_scale);
        // Instances started from here on declare the adversary in their
        // trace headers, so chc_check sees what the run actually faced.
        node.set_nemesis_phases(
            transport::to_header_phases(spec->schedule));
        return "OK";
      }
      if (tok[0] == "SHUTDOWN") {
        shutdown = true;
        return "BYE";
      }
      return "ERR unknown request";
    };

    while (!shutdown && g_stop_signal == 0) {
      rpc.poll(0, handler);
      // step() sleeps up to 1 ms when idle, so the loop neither spins nor
      // adds meaningful latency to RPC handling.
      node.step(1);
    }
    // Clean exit on SHUTDOWN / SIGTERM / SIGINT: footers flushed, sinks
    // closed — the traces need no torn-tail tolerance. (SIGKILL skips
    // this, which is exactly its job.)
    node.shutdown();
    return 0;
  } catch (const std::exception& ex) {
    std::cerr << "chc_node: " << ex.what() << "\n";
    return 1;
  }
}
