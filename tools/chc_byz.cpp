// chc_byz: runs the Byzantine convex consensus (BCC) scenario matrix —
// equivocators, geometry forgers, mid-broadcast silencers and payload
// manglers — against the verified-multiset protocol, re-verifies every
// trace with the offline checker, and re-executes it bit-identically.
//
//   chc_byz --list                         show the preset matrix
//   chc_byz --preset NAME [--seed N]       one scenario run
//   chc_byz --all [--seed N]               every preset once
//   chc_byz --sweep [--seed N]             boundary matrix, 3 seeds each
//   chc_byz --fuzz N [--seed BASE]         N sampled random adversaries
//
// Every mode exits non-zero if any run fails (checker violation, replay
// divergence, or an outcome contradicting the preset's expectation — a
// deciding tuple that stalls, an n = 3f tuple that "decides" anyway).
// With --out / --out-dir the traces are written for chc_check / archival;
// by default only failing traces are written. --report writes the metrics
// registry JSON.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bcc/presets.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace chc;

void usage() {
  std::cerr << "usage:\n"
               "  chc_byz --list\n"
               "  chc_byz --preset NAME [--seed N] [--out FILE]\n"
               "          [--report FILE]\n"
               "  chc_byz --all [--seed N] [--out-dir DIR] [--report FILE]\n"
               "  chc_byz --sweep [--seed N] [--out-dir DIR] [--report FILE]\n"
               "  chc_byz --fuzz N [--seed BASE] [--out-dir DIR]\n"
               "          [--report FILE]\n";
}

/// Strict numeric argument parsing: the whole value must be digits.
/// std::stoul alone would throw an uncaught exception on garbage (or
/// silently accept "5x"), turning a typo into a crash instead of usage.
std::uint64_t parse_count(const std::string& opt, const std::string& val) {
  std::uint64_t v = 0;
  bool ok = !val.empty();
  for (char ch : val) {
    if (ch < '0' || ch > '9' || v > (UINT64_MAX - 9) / 10) {
      ok = false;
      break;
    }
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  if (!ok) {
    std::cerr << opt << " needs a non-negative integer, got '" << val
              << "'\n";
    usage();
    std::exit(2);
  }
  return v;
}

void write_trace(const bcc::ByzRunResult& r, const std::string& path) {
  std::ofstream out(path);
  for (const std::string& line : r.trace_lines) out << line << "\n";
}

/// Runs one preset; writes the trace when a path is given or the run
/// failed (failing traces land in out_dir, or ./ without one).
bool run_and_report(const bcc::ByzPreset& preset, std::uint64_t seed,
                    obs::Registry* metrics, const std::string& out_path,
                    const std::string& out_dir) {
  const bcc::ByzRunResult r = bcc::run_byz_preset(preset, seed, metrics);
  std::cout << bcc::summarize(r) << "\n";
  std::string path = out_path;
  if (path.empty() && (!out_dir.empty() || !r.passed)) {
    const std::string dir = out_dir.empty() ? "." : out_dir;
    path = dir + "/byz_" + r.name + "_" + std::to_string(seed) + ".jsonl";
  }
  if (!path.empty()) write_trace(r, path);
  return r.passed;
}

const char* expect_name(bcc::ByzExpectation e) {
  switch (e) {
    case bcc::ByzExpectation::kDecide:
      return "decide";
    case bcc::ByzExpectation::kRbcStall:
      return "rbc-stall";
    case bcc::ByzExpectation::kRound0Empty:
      return "round0-empty";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset_name, out, out_dir, report;
  std::uint64_t seed = 1;
  std::uint64_t fuzz = 0;
  bool list = false, all = false, sweep = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") list = true;
    else if (arg == "--all") all = true;
    else if (arg == "--sweep") sweep = true;
    else if (arg == "--preset") preset_name = next();
    else if (arg == "--seed") seed = parse_count(arg, next());
    else if (arg == "--fuzz") fuzz = parse_count(arg, next());
    else if (arg == "--out") out = next();
    else if (arg == "--out-dir") out_dir = next();
    else if (arg == "--report") report = next();
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }

  if (list) {
    for (const bcc::ByzPreset& p : bcc::byz_presets()) {
      std::cout << p.name << "  (n=" << p.n << " f=" << p.f << " d=" << p.d
                << ", " << bcc::behavior_name(p.kind) << ", expect "
                << expect_name(p.expect) << ")\n    " << p.description
                << "\n";
    }
    return 0;
  }

  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
  obs::Registry metrics;
  std::uint64_t ran = 0, failed = 0;

  if (fuzz > 0) {
    for (std::uint64_t i = 0; i < fuzz; ++i) {
      const std::uint64_t s = seed + i;
      const bcc::ByzPreset p = bcc::sample_byz_preset(s);
      ++ran;
      if (!run_and_report(p, s, &metrics, "", out_dir)) ++failed;
    }
  } else if (sweep) {
    // Resilience-boundary sweep: every preset under three seeds, so both
    // sides of n = 3f+1 and the (d+2)f+1 gap are exercised repeatedly.
    for (const bcc::ByzPreset& p : bcc::byz_presets()) {
      for (std::uint64_t k = 0; k < 3; ++k) {
        ++ran;
        if (!run_and_report(p, seed + k, &metrics, "", out_dir)) ++failed;
      }
    }
  } else if (all) {
    for (const bcc::ByzPreset& p : bcc::byz_presets()) {
      ++ran;
      if (!run_and_report(p, seed, &metrics, "", out_dir)) ++failed;
    }
  } else if (!preset_name.empty()) {
    const bcc::ByzPreset* p = bcc::find_byz_preset(preset_name);
    if (p == nullptr) {
      std::cerr << "unknown preset: " << preset_name << " (try --list)\n";
      return 2;
    }
    ++ran;
    if (!run_and_report(*p, seed, &metrics, out, out_dir)) ++failed;
  } else {
    usage();
    return 2;
  }

  if (!report.empty()) {
    std::ofstream rep(report);
    rep << metrics.to_json() << "\n";
  }
  std::cout << (ran - failed) << "/" << ran << " byzantine runs passed\n";
  return failed == 0 ? 0 : 1;
}
