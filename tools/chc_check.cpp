// chc_check: offline trace checker (and replay verifier).
//
//   chc_check [options] TRACE.jsonl...
//
// For each trace: parses it, re-verifies the paper's invariants
// (obs/checker.hpp) and prints ACCEPT or REJECT with the first violating
// event's line, round and diagnostic. With --replay the run is also
// re-executed from the trace header and compared byte-for-byte
// (core/replay.hpp). Exit code: 0 = all traces accepted, 1 = at least one
// rejected or diverged, 2 = usage / unreadable input.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/replay.hpp"
#include "obs/checker.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: chc_check [--tol T] [--max-violations N] [--replay] "
         "TRACE.jsonl...\n"
         "  --tol T             geometric slack (default 1e-6)\n"
         "  --max-violations N  report up to N violations (default 16)\n"
         "  --replay            also re-execute from the header and require\n"
         "                      a byte-identical trace\n";
}

}  // namespace

int main(int argc, char** argv) {
  chc::obs::CheckOptions opts;
  bool replay = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol" && i + 1 < argc) {
      opts.tol = std::stod(argv[++i]);
    } else if (arg == "--max-violations" && i + 1 < argc) {
      opts.max_violations = std::stoul(argv[++i]);
    } else if (arg == "--replay") {
      replay = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage();
    return 2;
  }

  bool any_bad = false;
  for (const std::string& file : files) {
    const chc::obs::CheckReport report =
        chc::obs::check_trace_file(file, opts);
    if (!report.parsed) {
      std::cout << "ERROR   " << file << ": " << report.parse_error << "\n";
      return 2;
    }
    if (report.ok()) {
      std::cout << "ACCEPT  " << file << " (events=" << report.events
                << " snapshots=" << report.snapshots_checked
                << " containments=" << report.containments_checked
                << " pairs=" << report.pairs_checked
                << " rounds=" << report.rounds_seen
                << " iz=" << (report.iz_checked ? "yes" : "skipped");
      if (report.containments_skipped != 0) {
        std::cout << " containments_skipped=" << report.containments_skipped;
      }
      if (report.truncated_tail) std::cout << " truncated-tail";
      std::cout << ")\n";
    } else {
      any_bad = true;
      std::cout << "REJECT  " << file << " (" << report.violations.size()
                << " violation(s); first:)\n";
      for (const auto& v : report.violations) {
        std::cout << "  " << chc::obs::describe(v) << "\n";
      }
    }

    if (replay) {
      if (report.header.env == "live") {
        // Live cluster traces record real wall-clock interleavings; the
        // header says so (env=live) precisely because they cannot be
        // re-executed from a seed. Safety was still checked above.
        std::cout << "REPLAY-SKIP  " << file
                  << " (live trace: not seed-replayable)\n";
        continue;
      }
      const chc::core::ReplayResult rr = chc::core::replay_trace_file(file);
      if (!rr.ran) {
        std::cout << "REPLAY-ERROR " << file << ": " << rr.error << "\n";
        any_bad = true;
      } else if (rr.identical) {
        std::cout << "REPLAY-OK    " << file << " (" << rr.replayed_lines
                  << " lines bit-identical)\n";
      } else {
        any_bad = true;
        std::cout << "REPLAY-DIFF  " << file << " at line "
                  << rr.first_diff_line << ":\n  original: " << rr.expected
                  << "\n  replayed: " << rr.actual << "\n";
      }
    }
  }
  return any_bad ? 1 : 0;
}
