// chc_check: offline trace checker (and replay verifier).
//
//   chc_check [options] TRACE.jsonl...
//
// For each trace: parses it, re-verifies the paper's invariants
// (obs/checker.hpp) and prints ACCEPT or REJECT with the first violating
// event's line, round and diagnostic. With --replay the run is also
// re-executed from the trace header and compared byte-for-byte — crash-CC
// traces through core/replay.hpp, Byzantine (protocol=bcc) traces through
// bcc/replay.hpp. Exit code: 0 = all traces accepted, 1 = at least one
// rejected or diverged, 2 = usage / unreadable input.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bcc/replay.hpp"
#include "core/replay.hpp"
#include "obs/checker.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: chc_check [--tol T] [--max-violations N] [--replay] "
         "TRACE.jsonl...\n"
         "  --tol T             geometric slack (default 1e-6)\n"
         "  --max-violations N  report up to N violations (default 16)\n"
         "  --replay            also re-execute from the header and require\n"
         "                      a byte-identical trace\n";
}

/// Strict numeric argument parsing: the whole value must be digits.
/// std::stoul alone would throw an uncaught exception on garbage (or
/// silently accept "5x"), turning a typo into a crash instead of usage.
std::uint64_t parse_count(const std::string& opt, const std::string& val) {
  std::uint64_t v = 0;
  bool ok = !val.empty();
  for (char ch : val) {
    if (ch < '0' || ch > '9' || v > (UINT64_MAX - 9) / 10) {
      ok = false;
      break;
    }
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  if (!ok) {
    std::cerr << opt << " needs a non-negative integer, got '" << val
              << "'\n";
    usage();
    std::exit(2);
  }
  return v;
}

/// Same contract for real-valued options: the whole value must parse.
double parse_real(const std::string& opt, const std::string& val) {
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  if (val.empty() || end == nullptr || *end != '\0' || !std::isfinite(v)) {
    std::cerr << opt << " needs a finite number, got '" << val << "'\n";
    usage();
    std::exit(2);
  }
  return v;
}

std::string next_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::cerr << argv[i] << " needs a value\n";
    usage();
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  chc::obs::CheckOptions opts;
  bool replay = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol") {
      opts.tol = parse_real(arg, next_value(argc, argv, i));
    } else if (arg == "--max-violations") {
      opts.max_violations = parse_count(arg, next_value(argc, argv, i));
    } else if (arg == "--replay") {
      replay = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage();
    return 2;
  }

  bool any_bad = false;
  for (const std::string& file : files) {
    const chc::obs::CheckReport report =
        chc::obs::check_trace_file(file, opts);
    if (!report.parsed) {
      std::cout << "ERROR   " << file << ": " << report.parse_error << "\n";
      return 2;
    }
    // One summary shape for both verdicts (obs::summary_line), so skipped
    // containments and truncation never vanish from a rejecting run.
    if (report.ok()) {
      std::cout << "ACCEPT  " << file << " (" << chc::obs::summary_line(report)
                << ")\n";
    } else {
      any_bad = true;
      std::cout << "REJECT  " << file << " (" << chc::obs::summary_line(report)
                << "; " << report.violations.size() << " violation(s):)\n";
      for (const auto& v : report.violations) {
        std::cout << "  " << chc::obs::describe(v) << "\n";
      }
    }

    if (replay) {
      if (report.header.env == "live") {
        // Live cluster traces record real wall-clock interleavings; the
        // header says so (env=live) precisely because they cannot be
        // re-executed from a seed. Safety was still checked above.
        std::cout << "REPLAY-SKIP  " << file
                  << " (live trace: not seed-replayable)\n";
        continue;
      }
      const chc::core::ReplayResult rr =
          report.header.protocol == "bcc"
              ? chc::bcc::replay_trace_file(file)
              : chc::core::replay_trace_file(file);
      if (!rr.ran) {
        std::cout << "REPLAY-ERROR " << file << ": " << rr.error << "\n";
        any_bad = true;
      } else if (rr.identical) {
        std::cout << "REPLAY-OK    " << file << " (" << rr.replayed_lines
                  << " lines bit-identical)\n";
      } else {
        any_bad = true;
        std::cout << "REPLAY-DIFF  " << file << " at line "
                  << rr.first_diff_line << ":\n  original: " << rr.expected
                  << "\n  replayed: " << rr.actual << "\n";
      }
    }
  }
  return any_bad ? 1 : 0;
}
