// chc_serve: demo driver for the sharded multi-instance consensus service.
//
//   chc_serve [--instances N] [--shards S] [--seed BASE]
//             [--preset default|crash|lossy|mixed]
//             [--trace-dir DIR] [--report FILE] [--queue N]
//
// Builds a batch of N independent Algorithm CC instances according to the
// preset, runs them through svc::ConsensusService, and prints a per-instance
// summary plus aggregate throughput. With --trace-dir every instance's
// JSONL trace lands as instance_<id>.jsonl, each independently verifiable:
//
//   build/tools/chc_serve --instances 16 --shards 4 --trace-dir traces/
//   for t in traces/instance_*.jsonl; do build/tools/chc_check "$t"; done
//
// Exit status is 0 only when every instance earned the full certificate
// (quiescent + all decided + validity + agreement) — except instances the
// preset expects to fail (none of the shipped presets do).
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/lossy.hpp"
#include "net/policy.hpp"
#include "obs/metrics.hpp"
#include "svc/service.hpp"

namespace {

using namespace chc;

void usage() {
  std::cerr << "usage: chc_serve [--instances N] [--shards S] [--seed BASE]\n"
               "                 [--preset default|crash|lossy|mixed]\n"
               "                 [--trace-dir DIR] [--report FILE] "
               "[--queue N]\n";
}

/// Instance i of the batch under the chosen preset. `mixed` cycles crash
/// styles and puts every other instance behind the lossy preset + shim —
/// the same mix the differential and schedule-fuzz suites run.
svc::InstanceSpec make_spec(const std::string& preset, std::uint64_t i,
                            std::uint64_t seed_base) {
  svc::InstanceSpec spec;
  spec.id = i;
  spec.run.base.cc = core::CCConfig{.n = 5, .f = 1, .d = 2, .eps = 0.15};
  spec.run.base.seed = seed_base + i;
  if (preset == "default") {
    spec.run.base.crash_style = core::CrashStyle::kNone;
  } else if (preset == "crash") {
    spec.run.base.crash_style = core::CrashStyle::kMidBroadcast;
  } else if (preset == "lossy") {
    spec.run.base.crash_style = core::CrashStyle::kEarly;
    spec.run.policy = net::NetworkPolicy::lossy(0.15, 0.05, 0.10);
    spec.run.reliable = true;
  } else {  // mixed
    static constexpr core::CrashStyle kStyles[] = {
        core::CrashStyle::kNone, core::CrashStyle::kEarly,
        core::CrashStyle::kMidBroadcast, core::CrashStyle::kLate};
    spec.run.base.crash_style = kStyles[i % 4];
    if (i % 2 == 1) {
      spec.run.policy = net::NetworkPolicy::lossy(0.10, 0.03, 0.05);
      spec.run.reliable = true;
    }
  }
  return spec;
}

/// Strict numeric argument parsing: the whole value must be digits.
/// std::stoul alone would throw an uncaught exception on garbage (or
/// silently accept "5x"), turning a typo into a crash instead of usage.
std::uint64_t parse_count(const std::string& opt, const std::string& val) {
  std::uint64_t v = 0;
  bool ok = !val.empty();
  for (char ch : val) {
    if (ch < '0' || ch > '9' || v > (UINT64_MAX - 9) / 10) {
      ok = false;
      break;
    }
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  if (!ok) {
    std::cerr << opt << " needs a non-negative integer, got '" << val
              << "'\n";
    usage();
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t instances = 16;
  std::size_t shards = 0;  // 0: CHC_SVC_SHARDS env, then hardware_concurrency
  std::size_t queue = 64;
  std::uint64_t seed_base = 1;
  std::string preset = "mixed";
  std::string trace_dir;
  std::string report;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--instances") instances = parse_count(arg, next());
    else if (arg == "--shards") shards = parse_count(arg, next());
    else if (arg == "--queue") queue = parse_count(arg, next());
    else if (arg == "--seed") seed_base = parse_count(arg, next());
    else if (arg == "--preset") preset = next();
    else if (arg == "--trace-dir") trace_dir = next();
    else if (arg == "--report") report = next();
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (preset != "default" && preset != "crash" && preset != "lossy" &&
      preset != "mixed") {
    std::cerr << "unknown preset: " << preset << "\n";
    usage();
    return 2;
  }

  obs::Registry metrics;
  svc::ServiceConfig cfg;
  cfg.shards = shards;
  cfg.queue_capacity = queue;
  cfg.metrics = &metrics;
  cfg.trace_dir = trace_dir;

  const auto start = std::chrono::steady_clock::now();
  svc::ConsensusService service(std::move(cfg));
  std::vector<svc::InstanceSpec> batch;
  batch.reserve(instances);
  for (std::uint64_t i = 0; i < instances; ++i) {
    svc::InstanceSpec spec = make_spec(preset, i, seed_base);
    spec.trace = !trace_dir.empty();
    batch.push_back(std::move(spec));
  }
  service.submit_batch(std::move(batch));
  service.drain();
  const auto results = service.take_results();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::size_t failed = 0;
  for (const auto& r : results) {
    std::cout << (r.ok ? "ok      " : "FAILED  ") << "instance " << std::setw(3)
              << r.id << "  shard=" << r.shard
              << "  rounds=" << r.out.cert.rounds
              << "  d_H=" << r.out.cert.max_pairwise_hausdorff
              << "  dropped=" << r.out.stats.net_dropped
              << "  retransmits=" << r.out.stats.retransmits;
    if (!r.error.empty()) std::cout << "  error=" << r.error;
    std::cout << "\n";
    if (!r.ok) ++failed;
  }
  std::cout << std::fixed << std::setprecision(2) << results.size()
            << " instances on " << service.shards() << " shard(s) in " << secs
            << " s  (" << (static_cast<double>(results.size()) / secs)
            << " instances/s), " << failed << " failed\n";
  if (!trace_dir.empty()) {
    std::cout << "traces in " << trace_dir
              << "/instance_<id>.jsonl (verify with chc_check)\n";
  }

  if (!report.empty()) {
    std::ofstream rep(report);
    rep << "{\n  \"preset\": \"" << preset << "\",\n  \"instances\": "
        << results.size() << ",\n  \"shards\": " << service.shards()
        << ",\n  \"seconds\": " << secs << ",\n  \"instances_per_sec\": "
        << (static_cast<double>(results.size()) / secs)
        << ",\n  \"failed\": " << failed << ",\n  \"admitted\": "
        << metrics.counter("svc.admitted").value() << ",\n  \"rejected\": "
        << metrics.counter("svc.rejected").value()
        << ",\n  \"backpressure_waits\": "
        << metrics.counter("svc.backpressure_waits").value() << "\n}\n";
  }
  return failed == 0 ? 0 : 1;
}
