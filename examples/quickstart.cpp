// Quickstart: run asynchronous convex hull consensus (Algorithm CC) on a
// small system and inspect the certified outcome.
//
//   $ ./quickstart [seed]
//
// Seven processes, one crash fault with an incorrect input, 2-D inputs.
// Each fault-free process decides on a convex polytope inside the convex
// hull of the correct inputs; pairwise Hausdorff distance is below eps.
#include <cstdlib>
#include <iostream>

#include "core/harness.hpp"

int main(int argc, char** argv) {
  using namespace chc;

  core::RunConfig rc;
  rc.cc = core::CCConfig{.n = 7, .f = 1, .d = 2, .eps = 0.05};
  rc.pattern = core::InputPattern::kUniform;
  rc.crash_style = core::CrashStyle::kMidBroadcast;
  rc.delay = core::DelayRegime::kUniform;
  rc.seed = (argc > 1) ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::cout << "Convex hull consensus: n=" << rc.cc.n << " f=" << rc.cc.f
            << " d=" << rc.cc.d << " eps=" << rc.cc.eps
            << " t_end=" << rc.cc.t_end() << " seed=" << rc.seed << "\n\n";

  const core::RunOutput out = core::run_cc_once(rc);

  std::cout << "faulty set F = {";
  for (std::size_t i = 0; i < out.workload.faulty.size(); ++i) {
    std::cout << (i ? ", " : "") << out.workload.faulty[i];
  }
  std::cout << "}\n";
  for (sim::ProcessId p = 0; p < rc.cc.n; ++p) {
    std::cout << "  input[" << p << "] = " << out.workload.inputs[p] << "\n";
  }

  std::cout << "\nDecisions at fault-free processes:\n";
  for (sim::ProcessId p : out.correct) {
    const auto& dec = out.trace->of(p).decision;
    if (!dec.has_value()) {
      std::cout << "  process " << p << ": (no decision)\n";
      continue;
    }
    std::cout << "  process " << p << ": " << dec->vertices().size()
              << " vertices, area " << dec->measure() << "\n";
  }

  std::cout << "\nCertificate:\n"
            << "  all decided:        " << (out.cert.all_decided ? "yes" : "NO")
            << "\n  validity:           " << (out.cert.validity ? "yes" : "NO")
            << "\n  eps-agreement:      " << (out.cert.agreement ? "yes" : "NO")
            << " (max pairwise d_H = " << out.cert.max_pairwise_hausdorff
            << ")\n  optimality (I_Z):   " << (out.cert.optimality ? "yes" : "NO")
            << "\n  output area range:  [" << out.cert.min_output_measure
            << ", " << out.cert.max_output_measure << "]"
            << "\n  I_Z area:           " << out.cert.iz_measure
            << "\n  correct-hull area:  " << out.cert.correct_hull_measure
            << "\n  rounds executed:    " << out.cert.rounds
            << "\n  messages sent:      " << out.stats.messages_sent << "\n";

  const bool ok = out.cert.all_decided && out.cert.validity &&
                  out.cert.agreement && out.cert.optimality;
  std::cout << "\n" << (ok ? "SUCCESS" : "FAILURE")
            << ": consensus " << (ok ? "satisfied" : "violated")
            << " all certified properties.\n";
  return ok ? 0 : 1;
}
