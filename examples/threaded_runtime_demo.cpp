// Running Algorithm CC on real OS threads (rt::ThreadedRuntime).
//
// The same CCProcess code that the experiments drive deterministically in
// the discrete-event simulator runs here on one thread per process, with
// wall-clock delays and a genuine mid-protocol crash. Demonstrates the
// runtime-agnostic process abstraction.
#include <iostream>

#include "core/process_cc.hpp"
#include "geometry/polytope.hpp"
#include "rt/runtime.hpp"

int main() {
  using namespace chc;

  const core::CCConfig cfg{.n = 5, .f = 1, .d = 2, .eps = 0.05};
  std::cout << "Algorithm CC on " << cfg.n
            << " OS threads (t_end = " << cfg.t_end() << ")\n";

  sim::CrashSchedule crashes;
  crashes.set(4, sim::CrashPlan::after(60));  // dies mid-protocol

  rt::ThreadedRuntime rt(cfg.n, /*seed=*/2024,
                         std::make_unique<sim::UniformDelay>(0.05, 0.2),
                         crashes, /*time_scale=*/1e-3);

  const std::vector<geo::Vec> inputs = {
      geo::Vec{0.1, 0.1}, geo::Vec{0.9, 0.2}, geo::Vec{0.5, 0.9},
      geo::Vec{0.2, 0.6}, geo::Vec{1.9, 1.8}};  // process 4: incorrect
  for (std::size_t p = 0; p < cfg.n; ++p) {
    rt.add_process(std::make_unique<core::CCProcess>(cfg, inputs[p], nullptr));
  }

  rt.start();
  const bool done = rt.run_until(
      [&](rt::ThreadedRuntime& r) {
        for (std::size_t p = 0; p + 1 < cfg.n; ++p) {
          const bool decided = r.with_process(p, [](sim::Process& proc) {
            return static_cast<core::CCProcess&>(proc).decision().has_value();
          });
          if (!decided) return false;
        }
        return true;
      },
      /*timeout_s=*/30.0);
  rt.stop();

  if (!done) {
    std::cout << "timed out waiting for decisions\n";
    return 1;
  }
  std::cout << "messages sent: " << rt.messages_sent()
            << ", delivered: " << rt.messages_delivered()
            << ", process 4 crashed: " << (rt.crashed(4) ? "yes" : "no")
            << "\n\ndecisions:\n";
  std::vector<geo::Polytope> decisions;
  for (std::size_t p = 0; p + 1 < cfg.n; ++p) {
    decisions.push_back(rt.with_process(p, [](sim::Process& proc) {
      return *static_cast<core::CCProcess&>(proc).decision();
    }));
    std::cout << "  thread " << p << ": " << decisions.back().vertices().size()
              << " vertices, area " << decisions.back().measure() << "\n";
  }
  double max_dh = 0.0;
  for (std::size_t a = 0; a < decisions.size(); ++a) {
    for (std::size_t b = a + 1; b < decisions.size(); ++b) {
      max_dh = std::max(max_dh, geo::hausdorff(decisions[a], decisions[b]));
    }
  }
  std::cout << "max pairwise Hausdorff distance: " << max_dh
            << (max_dh < cfg.eps ? "  (< eps: agreement holds)" : "  (!!)")
            << "\n";
  return max_dh < cfg.eps ? 0 : 1;
}
