// Scenario: distributed sensor fusion with faulty sensors.
//
// Thirteen observation stations each estimate the 2-D position of a target.
// Up to two stations are faulty: they report wildly wrong positions
// (incorrect inputs) and may crash mid-protocol. The stations run convex
// hull consensus to agree — within eps — on a *region* guaranteed to lie
// inside the convex hull of the honest estimates, then each picks the
// point of that region nearest to its depot to dispatch a response team.
//
// This illustrates why a polytope-valued output is more useful than vector
// consensus's single point: every station can locally optimize its own
// objective over the agreed region while staying consistent with the rest.
#include <cmath>
#include <iostream>

#include "core/harness.hpp"
#include "optimize/minimize.hpp"

int main() {
  using namespace chc;

  core::RunConfig rc;
  rc.cc = core::CCConfig{.n = 13, .f = 2, .d = 2, .eps = 0.02};
  rc.pattern = core::InputPattern::kClustered;  // honest estimates agree-ish
  rc.crash_style = core::CrashStyle::kMidBroadcast;
  rc.delay = core::DelayRegime::kExponential;   // straggling radio links
  rc.seed = 7;

  std::cout << "Sensor fusion: " << rc.cc.n << " stations, up to " << rc.cc.f
            << " faulty, eps = " << rc.cc.eps << "\n";

  const core::RunOutput out = core::run_cc_once(rc);
  if (!out.cert.all_decided) {
    std::cout << "some station failed to decide\n";
    return 1;
  }

  std::cout << "agreed target region (station " << out.correct[0]
            << "): area = "
            << out.trace->of(out.correct[0]).decision->measure()
            << ", max disagreement d_H = " << out.cert.max_pairwise_hausdorff
            << "\n";
  std::cout << "validity (region inside honest estimates' hull): "
            << (out.cert.validity ? "yes" : "NO") << "\n\n";

  // Each station dispatches from its own depot: nearest point of the agreed
  // region. Depots ring the unit square.
  std::cout << "dispatch points (nearest point of agreed region to depot):\n";
  for (std::size_t i = 0; i < out.correct.size(); ++i) {
    const sim::ProcessId p = out.correct[i];
    const double ang =
        6.283185307179586 * static_cast<double>(i) /
        static_cast<double>(out.correct.size());
    const geo::Vec depot{2.0 * std::cos(ang), 2.0 * std::sin(ang)};
    const auto& region = *out.trace->of(p).decision;
    const geo::Vec dispatch = region.nearest_point(depot);
    std::cout << "  station " << p << ": depot " << depot << " -> "
              << dispatch << " (travel " << depot.dist(dispatch) << ")\n";
  }

  // A shared cost (fuel to a common refueling site) can also be optimized
  // per-station over the agreed region; values agree to ~eps * Lipschitz.
  const opt::QuadraticCost fuel(geo::Vec{1.0, 1.0});
  double lo = 1e100, hi = -1e100;
  for (sim::ProcessId p : out.correct) {
    const auto r = opt::minimize_over_polytope(
        fuel, *out.trace->of(p).decision);
    lo = std::min(lo, r.value);
    hi = std::max(hi, r.value);
  }
  std::cout << "\nshared-cost minimum across stations: [" << lo << ", " << hi
            << "] (spread " << hi - lo << ")\n";
  return 0;
}
