// Geometry demo: why h_i[0] is never empty (Lemma 2 / Tverberg's theorem).
//
// Any (d+1)f + 1 points in R^d admit a partition into f+1 parts whose
// convex hulls share a point; every (|X|-f)-subset keeps at least one part
// whole, so the subset-hull intersection contains that common point.
#include <iostream>

#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "geometry/ops.hpp"
#include "geometry/tverberg.hpp"

int main() {
  using namespace chc;
  Rng rng(2024);

  const std::size_t d = 2, f = 2;
  const std::size_t m = (d + 1) * f + 1;  // 7 points

  std::vector<geo::Vec> pts;
  for (std::size_t i = 0; i < m; ++i) {
    pts.push_back(geo::Vec{rng.uniform(0, 1), rng.uniform(0, 1)});
  }
  std::cout << m << " random points in the unit square (d=" << d
            << ", f=" << f << "):\n";
  for (std::size_t i = 0; i < m; ++i) {
    std::cout << "  p" << i << " = " << pts[i] << "\n";
  }

  const auto part = geo::tverberg_partition(pts, f + 1);
  if (!part) {
    std::cout << "no Tverberg partition found (should not happen!)\n";
    return 1;
  }
  std::cout << "\nTverberg partition into " << f + 1 << " parts:\n";
  for (std::size_t k = 0; k < part->parts.size(); ++k) {
    std::cout << "  T" << k + 1 << " = {";
    for (std::size_t j = 0; j < part->parts[k].size(); ++j) {
      std::cout << (j ? ", " : "") << "p" << part->parts[k][j];
    }
    std::cout << "}\n";
  }
  std::cout << "common witness point: " << part->witness << "\n";

  const auto h0 = geo::intersection_of_subset_hulls(pts, f);
  std::cout << "\nh[0] = intersection of all C(" << m << "," << f
            << ") = " << binomial(m, f) << " subset hulls:\n  "
            << (h0.is_empty() ? 0u : h0.vertices().size())
            << " vertices, area " << (h0.is_empty() ? 0.0 : h0.measure())
            << "\n";
  std::cout << "witness inside h[0]: "
            << (h0.contains(part->witness, 1e-6) ? "yes" : "NO")
            << "  (Lemma 2: J ⊆ h_i[0], so h_i[0] is non-empty)\n";
  return h0.is_empty() ? 1 : 0;
}
