// Convex hull function optimization (paper §7): the 2-step algorithm, the
// weak β-optimality guarantee, and the Theorem-4 tension that rules out
// point agreement for arbitrary costs.
#include <iostream>

#include "optimize/two_step.hpp"

int main() {
  using namespace chc;

  // --- Part 1: b-Lipschitz quadratic cost, beta chosen up front. -----
  {
    core::RunConfig rc;
    rc.cc = core::CCConfig{.n = 9, .f = 2, .d = 2, .eps = 0.05};
    rc.pattern = core::InputPattern::kUniform;
    rc.crash_style = core::CrashStyle::kEarly;
    rc.seed = 11;

    const opt::QuadraticCost cost(geo::Vec{0.0, 0.0});
    const double b =
        *cost.lipschitz_on(geo::Vec{-2, -2}, geo::Vec{2, 2});
    const double beta = 0.25;
    rc.cc.eps = opt::epsilon_for_beta(beta, b);

    std::cout << "2-step optimization, quadratic cost c(x) = ||x||^2\n"
              << "  beta = " << beta << ", Lipschitz b = " << b
              << " -> eps = " << rc.cc.eps << " (t_end = " << rc.cc.t_end()
              << ")\n";

    const auto out = opt::optimize_two_step(rc, cost);
    std::cout << "  validity: " << (out.validity ? "yes" : "NO")
              << ", cost spread = " << out.max_cost_spread
              << " (< beta: " << (out.max_cost_spread < beta ? "yes" : "NO")
              << "), point spread = " << out.max_point_spread << "\n";
    for (const auto& o : out.outputs) {
      std::cout << "    process " << o.pid << ": y = " << o.y
                << ", c(y) = " << o.cost << "\n";
    }
  }

  // --- Part 2: the Theorem-4 cost — weak optimality holds, but argmin
  // ties at the two global minima can break point agreement. ----------
  {
    core::RunConfig rc;
    rc.cc = core::CCConfig{.n = 4, .f = 1, .d = 1, .eps = 0.05};
    rc.pattern = core::InputPattern::kUniform;
    rc.crash_style = core::CrashStyle::kNone;
    rc.seed = 3;

    const opt::Theorem4Cost cost;
    std::cout << "\nTheorem-4 cost c(x) = 4-(2x-1)^2 on [0,1], 3 outside\n"
              << "  (two global minima at x=0 and x=1: the tie that makes\n"
              << "   eps-agreement + optimality impossible in general)\n";
    const auto out = opt::optimize_two_step(rc, cost);
    for (const auto& o : out.outputs) {
      std::cout << "    process " << o.pid << ": y = " << o.y
                << ", c(y) = " << o.cost << "\n";
    }
    std::cout << "  cost spread = " << out.max_cost_spread
              << " (weak optimality), point spread = "
              << out.max_point_spread
              << (out.max_point_spread > rc.cc.eps
                      ? "  <-- exceeds eps: no point agreement"
                      : "  (tie happened to break the same way)")
              << "\n";
  }
  return 0;
}
