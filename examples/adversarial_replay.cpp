// Adversarial deep-dive: mid-broadcast crashes, the stable-vector
// Containment property, the I_Z optimality floor, and what breaks when
// round 0 skips the stable vector (the naive ablation).
#include <algorithm>
#include <iostream>
#include <set>

#include "core/harness.hpp"

using namespace chc;

namespace {

void show_views(const core::RunOutput& out) {
  std::cout << "round-0 views R_i (stable vector):\n";
  for (sim::ProcessId p : out.correct) {
    const auto& view = out.trace->of(p).round0_view;
    if (!view.has_value()) continue;
    std::cout << "  R_" << p << " = {";
    bool first = true;
    for (const auto& [origin, x] : *view) {
      std::cout << (first ? "" : ", ") << origin;
      first = false;
    }
    std::cout << "}\n";
  }
  // Containment check, printed.
  std::vector<std::set<sim::ProcessId>> views;
  for (sim::ProcessId p : out.correct) {
    const auto& view = out.trace->of(p).round0_view;
    if (!view.has_value()) continue;
    std::set<sim::ProcessId> s;
    for (const auto& [o, x] : *view) s.insert(o);
    views.push_back(std::move(s));
  }
  bool contained = true;
  for (std::size_t a = 0; a < views.size(); ++a) {
    for (std::size_t b = a + 1; b < views.size(); ++b) {
      const bool ab = std::includes(views[b].begin(), views[b].end(),
                                    views[a].begin(), views[a].end());
      const bool ba = std::includes(views[a].begin(), views[a].end(),
                                    views[b].begin(), views[b].end());
      if (!ab && !ba) contained = false;
    }
  }
  std::cout << "containment across views: " << (contained ? "HOLDS" : "BROKEN")
            << "\n";
}

core::RunOutput run(core::Round0Policy policy, std::uint64_t seed) {
  core::RunConfig rc;
  rc.cc = core::CCConfig{.n = 9, .f = 2, .d = 2, .eps = 0.05};
  rc.cc.round0 = policy;
  rc.pattern = core::InputPattern::kUniform;
  rc.crash_style = core::CrashStyle::kMidBroadcast;
  rc.delay = core::DelayRegime::kLaggedFaulty;
  rc.seed = seed;
  return core::run_cc_once(rc);
}

}  // namespace

int main() {
  std::cout << "=== Algorithm CC with stable vector (the paper) ===\n";
  const auto good = run(core::Round0Policy::kStableVector, 19);
  show_views(good);
  std::cout << "certificate: validity=" << good.cert.validity
            << " agreement=" << good.cert.agreement
            << " optimality(I_Z in output)=" << good.cert.optimality
            << "\noutput area in [" << good.cert.min_output_measure << ", "
            << good.cert.max_output_measure << "], I_Z area "
            << good.cert.iz_measure << "\n";

  std::cout << "\n=== Ablation: naive round 0 (no stable vector) ===\n";
  // Sweep seeds; naive round 0 keeps validity/agreement but can lose the
  // I_Z floor: with fragmented round-0 views the guaranteed common region
  // shrinks (or the containment certificate fails outright).
  std::size_t opt_ok = 0, runs = 0;
  double area_ratio_sum = 0.0;
  for (std::uint64_t seed = 19; seed < 39; ++seed) {
    const auto naive = run(core::Round0Policy::kNaiveCollect, seed);
    if (!naive.cert.all_decided) continue;
    ++runs;
    if (naive.cert.optimality) ++opt_ok;
    const auto ref = run(core::Round0Policy::kStableVector, seed);
    if (ref.cert.max_output_measure > 1e-12) {
      area_ratio_sum +=
          naive.cert.max_output_measure / ref.cert.max_output_measure;
    }
  }
  std::cout << "runs: " << runs << ", I_Z-optimality certificate held in "
            << opt_ok << " (stable vector holds it in all by Lemma 6)\n"
            << "mean output-area ratio naive/stable = "
            << area_ratio_sum / static_cast<double>(runs) << "\n";
  std::cout << "\nThe stable vector's Containment property is exactly what "
               "makes every\nfault-free output contain I_Z (Lemma 6) and "
               "hence optimal (Theorem 3).\n";
  return 0;
}
