// chc_cli — run convex hull consensus executions from the command line.
//
//   chc_cli [--n N] [--f F] [--d D] [--eps E] [--seed S] [--runs R]
//           [--pattern uniform|clustered|collinear|identical]
//           [--crash none|early|mid|late]
//           [--delay uniform|expo|lagged|lagged1]
//           [--model incorrect|correct]
//           [--round0 stable|naive]
//           [--csv]
//
// One row per run: seed, certificate flags, disagreement, sizes, cost.
// Exit status 0 iff every run certified.
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/harness.hpp"

using namespace chc;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::cerr << "error: " << msg << "\n"
            << "usage: chc_cli [--n N] [--f F] [--d D] [--eps E] [--seed S]\n"
            << "  [--runs R] [--pattern uniform|clustered|collinear|identical]\n"
            << "  [--crash none|early|mid|late] [--delay uniform|expo|lagged|lagged1]\n"
            << "  [--model incorrect|correct] [--round0 stable|naive] [--csv]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::RunConfig rc;
  rc.cc = core::CCConfig{.n = 7, .f = 1, .d = 2, .eps = 0.05};
  rc.pattern = core::InputPattern::kUniform;
  rc.crash_style = core::CrashStyle::kMidBroadcast;
  rc.delay = core::DelayRegime::kUniform;
  rc.seed = 1;
  std::size_t runs = 1;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--n") {
      rc.cc.n = std::stoul(next());
    } else if (arg == "--f") {
      rc.cc.f = std::stoul(next());
    } else if (arg == "--d") {
      rc.cc.d = std::stoul(next());
    } else if (arg == "--eps") {
      rc.cc.eps = std::stod(next());
    } else if (arg == "--seed") {
      rc.seed = std::stoull(next());
    } else if (arg == "--runs") {
      runs = std::stoul(next());
    } else if (arg == "--pattern") {
      const std::string v = next();
      if (v == "uniform") rc.pattern = core::InputPattern::kUniform;
      else if (v == "clustered") rc.pattern = core::InputPattern::kClustered;
      else if (v == "collinear") rc.pattern = core::InputPattern::kCollinear;
      else if (v == "identical") rc.pattern = core::InputPattern::kIdentical;
      else usage("unknown pattern");
    } else if (arg == "--crash") {
      const std::string v = next();
      if (v == "none") rc.crash_style = core::CrashStyle::kNone;
      else if (v == "early") rc.crash_style = core::CrashStyle::kEarly;
      else if (v == "mid") rc.crash_style = core::CrashStyle::kMidBroadcast;
      else if (v == "late") rc.crash_style = core::CrashStyle::kLate;
      else usage("unknown crash style");
    } else if (arg == "--delay") {
      const std::string v = next();
      if (v == "uniform") rc.delay = core::DelayRegime::kUniform;
      else if (v == "expo") rc.delay = core::DelayRegime::kExponential;
      else if (v == "lagged") rc.delay = core::DelayRegime::kLaggedFaulty;
      else if (v == "lagged1") rc.delay = core::DelayRegime::kLaggedOneCorrect;
      else usage("unknown delay regime");
    } else if (arg == "--model") {
      const std::string v = next();
      if (v == "incorrect") {
        rc.cc.fault_model = core::FaultModel::kCrashIncorrectInputs;
      } else if (v == "correct") {
        rc.cc.fault_model = core::FaultModel::kCrashCorrectInputs;
      } else {
        usage("unknown fault model");
      }
    } else if (arg == "--round0") {
      const std::string v = next();
      if (v == "stable") rc.cc.round0 = core::Round0Policy::kStableVector;
      else if (v == "naive") rc.cc.round0 = core::Round0Policy::kNaiveCollect;
      else usage("unknown round0 policy");
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage("help requested");
    } else {
      usage(("unknown flag " + arg).c_str());
    }
  }

  if (!rc.cc.meets_resilience_bound()) {
    std::cerr << "note: n=" << rc.cc.n << " is below the resilience bound "
              << "for f=" << rc.cc.f << ", d=" << rc.cc.d
              << " — running anyway (expect round-0 failures)\n";
  }

  Table t({"seed", "decided", "valid", "agree", "optimal", "max_dH",
           "min_area", "IZ_area", "rounds", "msgs", "sim_time"});
  bool all_ok = true;
  for (std::size_t r = 0; r < runs; ++r) {
    core::RunConfig one = rc;
    one.seed = rc.seed + r;
    const auto out = core::run_cc_once(one);
    const bool ok = out.cert.all_decided && out.cert.validity &&
                    out.cert.agreement && out.cert.optimality;
    all_ok = all_ok && ok;
    t.add_row({Table::num(std::size_t(one.seed)),
               out.cert.all_decided ? "y" : "N", out.cert.validity ? "y" : "N",
               out.cert.agreement ? "y" : "N", out.cert.optimality ? "y" : "N",
               Table::num(out.cert.max_pairwise_hausdorff, 3),
               Table::num(out.cert.min_output_measure, 4),
               Table::num(out.cert.iz_measure, 4), Table::num(out.cert.rounds),
               Table::num(std::size_t(out.stats.messages_sent)),
               Table::num(out.stats.end_time, 4)});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    std::cout << "convex hull consensus: n=" << rc.cc.n << " f=" << rc.cc.f
              << " d=" << rc.cc.d << " eps=" << rc.cc.eps
              << " t_end=" << rc.cc.t_end() << "\n";
    t.print(std::cout);
  }
  return all_ok ? 0 : 1;
}
